#pragma once
// The shared wireless medium.
//
// Tracks attached radios and, for every transmission, computes the
// per-receiver received power (through the propagation model, so it can
// be time-varying and asymmetric) and schedules signal start/end events
// at each receiver after the propagation delay. The medium itself has no
// protocol knowledge: a transmission is a burst of energy with an opaque
// payload; all decode decisions live in Radio.
//
// Delivery is spatially culled: radios are kept in a uniform-grid index
// (spatial::UniformGrid) keyed off the maximum carrier-sense range — the
// distance at which the strongest attached transmitter can still deliver
// energy that matters (raise CCA or perturb SINR), derived through
// PropagationModel::distance_for_loss with an aggregation allowance for
// sub-threshold signals summing, plus the model's stochastic margin when
// the channel fades. Radios beyond that cutoff receive nothing and cost
// nothing: per-transmission work is O(neighbors), not O(N). Neighbor
// queries return radios sorted by id — the same order the legacy
// all-pairs loop used (radios attach in id order) — so event sequences
// are bit-identical to the unculled medium whenever nothing is actually
// out of range (all paper-scale scenarios). `MediumConfig::spatial_index
// = false` restores the all-pairs loop, which the differential tests use
// as an oracle.
//
// The emitter interface is generalized beyond radios: any point source
// can inject undecodable energy with begin_interference (the faults
// subsystem's jammers / LOS-crossing bursts), which raises carrier sense
// and corrupts receptions exactly like a too-weak 802.11 frame would.
// Interference bursts carry their own power, so their delivery radius is
// derived per burst. Directed links can also be administratively blocked
// (blackout faults).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "phy/propagation.hpp"
#include "phy/rates.hpp"
#include "phy/timing.hpp"
#include "sim/simulator.hpp"
#include "spatial/uniform_grid.hpp"

namespace adhoc::phy {

class Radio;

/// What the MAC hands to the PHY for one transmission.
struct TxDescriptor {
  Rate rate = Rate::kR1;
  std::uint32_t psdu_bits = 0;
  Preamble preamble = Preamble::kLong;
  /// Opaque upper-layer frame; the PHY never inspects it.
  std::shared_ptr<const void> payload;
};

/// Unique id per transmission, used to correlate start/end at receivers.
using SignalId = std::uint64_t;

struct MediumConfig {
  /// Deliver through the uniform-grid index (false: legacy all-pairs
  /// fan-out — the oracle for differential tests, and a micro-topology
  /// escape hatch).
  bool spatial_index = true;
  /// Allowance (dB) below a radio's weakest energy floor at which a
  /// single signal is still considered relevant: many sub-floor signals
  /// can sum past CCA, so a lone signal this far under the floor is
  /// still delivered. Larger = more conservative, less culling.
  double aggregation_margin_db = 10.0;
  /// Mobile-position slack as a fraction of the carrier-sense cutoff.
  /// The index widens queries by this slack and refreshes a mobile
  /// radio's cached position only after it could have drifted that far.
  double slack_frac = 0.25;
};

class Medium {
 public:
  Medium(sim::Simulator& simulator, const PropagationModel& propagation, MediumConfig config = {});

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Register a radio. The radio must outlive the medium's use of it.
  /// Radio ids must be unique (constant-time check).
  void attach(Radio& radio);

  /// Called by a Radio that begins transmitting: fan the signal out to
  /// every attached radio within the carrier-sense cutoff. `duration` is
  /// the full frame airtime.
  void begin_transmission(const Radio& tx, const TxDescriptor& desc, sim::Time duration);

  /// Non-802.11 energy burst from a point source at `pos`: fans out to
  /// every radio in range as a noise signal (raises CCA, degrades SINR)
  /// that can never be locked onto. `emitter_id` keys the directed
  /// shadowing processes toward each receiver and must not collide with
  /// radio ids. The delivery radius is derived from `power_dbm`.
  void begin_interference(std::uint32_t emitter_id, const Position& pos, double power_dbm,
                          sim::Time duration);

  /// Administratively block (or unblock) the directed link tx -> rx:
  /// transmissions from `tx_id` are not fanned out to `rx_id` while
  /// blocked — a total per-link outage (fault blackout windows).
  void set_link_blocked(std::uint32_t tx_id, std::uint32_t rx_id, bool blocked);
  [[nodiscard]] bool link_blocked(std::uint32_t tx_id, std::uint32_t rx_id) const {
    return blocked_links_.contains(LinkId{tx_id, rx_id});
  }

  // --- Radio state-change notifications -------------------------------
  /// The radio teleported (set_position): refresh its index cell now.
  void notify_moved(const Radio& radio);
  /// The radio's mobility model changed: its speed bound (and hence its
  /// staleness deadline) must be re-derived.
  void notify_mobility_changed(const Radio& radio);

  [[nodiscard]] const PropagationModel& propagation() const { return propagation_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t radio_count() const { return radios_.size(); }
  [[nodiscard]] const MediumConfig& config() const { return cfg_; }

  /// Total transmissions fanned out (for benchmarks/tests).
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  /// Total interference bursts fanned out.
  [[nodiscard]] std::uint64_t interference_bursts() const { return interference_bursts_; }
  /// Receiver deliveries suppressed by a blocked link.
  [[nodiscard]] std::uint64_t deliveries_blocked() const { return deliveries_blocked_; }
  /// Signal/noise deliveries actually scheduled at receivers.
  [[nodiscard]] std::uint64_t deliveries_scheduled() const { return deliveries_scheduled_; }
  /// Deliveries skipped because the receiver sat beyond the energy
  /// cutoff — the all-pairs work the spatial index saved.
  [[nodiscard]] std::uint64_t deliveries_culled() const { return deliveries_culled_; }

  /// Carrier-sense range cutoff (m) of the last index build; 0 before
  /// the first delivery (the index is built lazily).
  [[nodiscard]] double cs_cutoff_m() const { return cs_cutoff_m_; }
  /// Weakest rx power (dBm) still delivered: min over radios of
  /// min(cs_threshold, noise_floor) minus the aggregation margin.
  [[nodiscard]] double relevance_floor_dbm() const { return floor_dbm_; }
  /// Peak entries in one index cell (0 with the index disabled/unbuilt).
  [[nodiscard]] std::size_t cell_high_water() const {
    return grid_ ? grid_->cell_high_water() : 0;
  }
  [[nodiscard]] std::size_t cells_in_use() const { return grid_ ? grid_->cells_in_use() : 0; }

  // --- Test hook -------------------------------------------------------
  /// One scheduled delivery, observed synchronously at fan-out time.
  struct DeliveryRecord {
    std::uint32_t source = 0;  ///< transmitting radio or emitter id
    std::uint32_t rx = 0;
    double rx_dbm = 0.0;
    sim::Time start;
    sim::Time end;
    bool noise = false;
  };
  /// Invoked for every delivery begin_transmission / begin_interference
  /// schedules (differential tests; empty function disables).
  void set_delivery_probe(std::function<void(const DeliveryRecord&)> probe) {
    delivery_probe_ = std::move(probe);
  }

 private:
  /// (Re)build the index when absent or stale (new radio, hotter
  /// transmitter, larger stochastic margin).
  void ensure_index();
  /// Fill targets_ with the radios a source at `pos` emitting
  /// `power_dbm` can reach, sorted by id; `self` (the transmitter) is
  /// excluded. Returns the number of radios culled.
  std::uint64_t collect_targets(const Position& pos, double power_dbm, const Radio* self);

  sim::Simulator& sim_;
  const PropagationModel& propagation_;
  MediumConfig cfg_;
  std::vector<Radio*> radios_;  // sorted by id (attach keeps order)
  std::unordered_map<std::uint32_t, Radio*> by_id_;
  std::unordered_set<LinkId, LinkIdHash> blocked_links_;
  SignalId next_signal_id_ = 1;

  std::optional<spatial::UniformGrid> grid_;
  double cs_cutoff_m_ = 0.0;
  double floor_dbm_ = 0.0;
  std::vector<std::uint32_t> query_ids_;  // query scratch (no per-TX alloc)
  std::vector<Radio*> targets_;

  std::function<void(const DeliveryRecord&)> delivery_probe_;

  std::uint64_t transmissions_ = 0;
  std::uint64_t interference_bursts_ = 0;
  std::uint64_t deliveries_blocked_ = 0;
  std::uint64_t deliveries_scheduled_ = 0;
  std::uint64_t deliveries_culled_ = 0;
};

}  // namespace adhoc::phy
