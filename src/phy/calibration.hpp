#pragma once
// Range <-> threshold calibration.
//
// The reproduction inverts the paper's measurement: the paper measured
// ranges on real hardware; we pick receiver thresholds so the simulated
// ranges land on those measurements (Table 3), then verify by re-running
// the paper's loss-vs-distance experiment in simulation (Fig. 3).

#include <array>

#include "phy/phy_params.hpp"
#include "phy/propagation.hpp"

namespace adhoc::phy {

/// Table 3 midpoints: target deterministic TX range per rate, meters.
/// {1 Mbps: 120, 2 Mbps: 95, 5.5 Mbps: 70, 11 Mbps: 30}.
inline constexpr std::array<double, 4> kPaperRangesM{120.0, 95.0, 70.0, 30.0};

/// Target physical-carrier-sensing range (energy detect), meters. The
/// paper infers that in the 2 Mbps configuration (max span 142.5 m) "all
/// stations are within the same physical carrier sensing range"; 180 m
/// keeps that true with margin even under fading.
inline constexpr double kPaperPcsRangeM = 180.0;

/// Receive threshold (dBm) that yields deterministic range `range_m`
/// under `model` at `tx_power_dbm`.
[[nodiscard]] double threshold_for_range(const PropagationModel& model, double tx_power_dbm,
                                         double range_m);

/// Deterministic range implied by a threshold.
[[nodiscard]] double range_for_threshold(const PropagationModel& model, double tx_power_dbm,
                                         double threshold_dbm);

/// Per-rate sensitivities for the given target ranges (indexed like
/// PhyParams::sensitivity_dbm, i.e. by rate_index: 1, 2, 5.5, 11 Mbps).
[[nodiscard]] std::array<double, 4> sensitivities_for_ranges(
    const PropagationModel& model, double tx_power_dbm, const std::array<double, 4>& ranges_m);

/// PhyParams calibrated against `model` for the paper's Table 3 ranges
/// and PCS range.
[[nodiscard]] PhyParams paper_calibrated_params(const PropagationModel& model,
                                                double tx_power_dbm = 15.0);

/// The default deterministic propagation model used throughout the
/// reproduction: log-distance, exponent 3.3, 40 dB at 1 m.
[[nodiscard]] const LogDistance& default_outdoor_model();

/// Interference range (paper §2): the distance from a *receiver* within
/// which a simultaneous transmitter corrupts reception, as a multiple of
/// the sender-receiver distance. Under a log-distance model with
/// exponent n and a SINR threshold S dB, an interferer at range r
/// corrupts when r < d * 10^(S / (10 n)) — i.e. IF_range grows linearly
/// with the link distance, exactly the dependency the paper describes.
[[nodiscard]] double interference_range_factor(double path_loss_exponent,
                                               double sinr_threshold_db);

/// ns-2-style PHY: the simulator defaults the paper criticizes —
/// TX_range = 250 m for every rate, PCS/IF range = 550 m. Useful to
/// reproduce the paper's point that contemporary simulation studies ran
/// with ranges 2-8x larger than real hardware delivered.
[[nodiscard]] PhyParams ns2_style_params(const PropagationModel& model,
                                         double tx_power_dbm = 15.0);

}  // namespace adhoc::phy
