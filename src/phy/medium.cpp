#include "phy/medium.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "phy/radio.hpp"

namespace adhoc::phy {

Medium::Medium(sim::Simulator& simulator, const PropagationModel& propagation, MediumConfig config)
    : sim_(simulator), propagation_(propagation), cfg_(config) {
  if (cfg_.aggregation_margin_db < 0.0 || cfg_.slack_frac < 0.0) {
    throw std::invalid_argument("Medium: negative aggregation margin or slack fraction");
  }
}

void Medium::attach(Radio& radio) {
  if (!by_id_.emplace(radio.id(), &radio).second) {
    throw std::invalid_argument("Medium: duplicate radio id");
  }
  // Keep radios_ sorted by id: both delivery paths iterate it (directly
  // or via the index's sorted queries), so delivery order is by id no
  // matter the attach order.
  const auto at = std::lower_bound(radios_.begin(), radios_.end(), &radio,
                                   [](const Radio* a, const Radio* b) { return a->id() < b->id(); });
  radios_.insert(at, &radio);
  // The new radio may lower the relevance floor or raise the power
  // budget; rebuild the index lazily at the next delivery.
  grid_.reset();
}

void Medium::ensure_index() {
  if (grid_) return;
  double max_tx_dbm = -std::numeric_limits<double>::infinity();
  double floor_dbm = std::numeric_limits<double>::infinity();
  for (const Radio* r : radios_) {
    max_tx_dbm = std::max(max_tx_dbm, r->params().tx_power_dbm);
    floor_dbm =
        std::min(floor_dbm, std::min(r->params().cs_threshold_dbm, r->params().noise_floor_dbm));
  }
  floor_dbm_ = floor_dbm - cfg_.aggregation_margin_db;
  const double margin_db = propagation_.stochastic_margin_db();
  const double budget_db = max_tx_dbm - floor_dbm_ + margin_db;
  cs_cutoff_m_ = budget_db > 0.0 ? propagation_.distance_for_loss(budget_db) : 0.0;
  spatial::UniformGrid::Config gc;
  gc.slack_m = cfg_.slack_frac * cs_cutoff_m_;
  gc.cell_m = std::max(cs_cutoff_m_ + gc.slack_m, 1.0);
  grid_.emplace(gc);
  const sim::Time now = sim_.now();
  for (Radio* r : radios_) {
    grid_->insert(r->id(), [r] { return r->position(); }, r->max_speed_bound(), now);
  }
}

std::uint64_t Medium::collect_targets(const Position& pos, double power_dbm, const Radio* self) {
  targets_.clear();
  const std::uint64_t others = radios_.size() - (self != nullptr ? 1 : 0);
  if (!cfg_.spatial_index || radios_.size() <= 1) {
    for (Radio* rx : radios_) {
      if (rx != self) targets_.push_back(rx);
    }
    return 0;
  }
  ensure_index();
  grid_->refresh(sim_.now());
  // Per-source delivery radius: the distance at which this source's
  // power fades to the relevance floor (stochastic margin included, so
  // a lucky fade cannot out-range the cull).
  const double budget_db = power_dbm - floor_dbm_ + propagation_.stochastic_margin_db();
  const double radius_m = budget_db > 0.0 ? propagation_.distance_for_loss(budget_db) : 0.0;
  grid_->query(pos, radius_m, query_ids_);
  for (const std::uint32_t id : query_ids_) {
    if (self != nullptr && id == self->id()) continue;
    targets_.push_back(by_id_.find(id)->second);
  }
  return others - targets_.size();
}

void Medium::begin_transmission(const Radio& tx, const TxDescriptor& desc, sim::Time duration) {
  ++transmissions_;
  const SignalId sid = next_signal_id_++;
  const sim::Time now = sim_.now();
  const Position tx_pos = tx.position();
  deliveries_culled_ += collect_targets(tx_pos, tx.params().tx_power_dbm, &tx);
  for (Radio* rx : targets_) {
    if (!blocked_links_.empty() && blocked_links_.contains(LinkId{tx.id(), rx->id()})) {
      ++deliveries_blocked_;
      continue;
    }
    const Position rx_pos = rx->position();
    const double dist_m = distance(tx_pos, rx_pos);
    const auto delay_ns = static_cast<std::int64_t>(dist_m / kSpeedOfLight * 1e9);
    const sim::Time delay = sim::Time::ns(std::max<std::int64_t>(delay_ns, 1));
    const LinkId link{tx.id(), rx->id()};
    const double rx_dbm =
        propagation_.rx_power_dbm(tx.params().tx_power_dbm, tx_pos, rx_pos, now, link);
    const sim::Time start_at = now + delay;
    const sim::Time end_at = start_at + duration;
    ++deliveries_scheduled_;
    if (delivery_probe_) {
      delivery_probe_(DeliveryRecord{tx.id(), rx->id(), rx_dbm, start_at, end_at, false});
    }
    sim_.at(start_at, [rx, sid, rx_dbm, desc, end_at] {
      rx->signal_start(sid, rx_dbm, desc, end_at);
    }, "phy.signal_start");
    sim_.at(end_at, [rx, sid] { rx->signal_end(sid); }, "phy.signal_end");
  }
}

void Medium::begin_interference(std::uint32_t emitter_id, const Position& pos, double power_dbm,
                                sim::Time duration) {
  ++interference_bursts_;
  const SignalId sid = next_signal_id_++;
  const sim::Time now = sim_.now();
  deliveries_culled_ += collect_targets(pos, power_dbm, nullptr);
  for (Radio* rx : targets_) {
    const Position rx_pos = rx->position();
    const double dist_m = distance(pos, rx_pos);
    const auto delay_ns = static_cast<std::int64_t>(dist_m / kSpeedOfLight * 1e9);
    const sim::Time delay = sim::Time::ns(std::max<std::int64_t>(delay_ns, 1));
    const LinkId link{emitter_id, rx->id()};
    const double rx_dbm = propagation_.rx_power_dbm(power_dbm, pos, rx_pos, now, link);
    const sim::Time start_at = now + delay;
    const sim::Time end_at = start_at + duration;
    ++deliveries_scheduled_;
    if (delivery_probe_) {
      delivery_probe_(DeliveryRecord{emitter_id, rx->id(), rx_dbm, start_at, end_at, true});
    }
    sim_.at(start_at, [rx, sid, rx_dbm, end_at] { rx->noise_start(sid, rx_dbm, end_at); },
            "phy.noise_start");
    sim_.at(end_at, [rx, sid] { rx->signal_end(sid); }, "phy.signal_end");
  }
}

void Medium::notify_moved(const Radio& radio) {
  if (grid_) grid_->touch(radio.id(), sim_.now());
}

void Medium::notify_mobility_changed(const Radio& radio) {
  if (grid_) grid_->set_max_speed(radio.id(), radio.max_speed_bound(), sim_.now());
}

void Medium::set_link_blocked(std::uint32_t tx_id, std::uint32_t rx_id, bool blocked) {
  if (blocked) {
    blocked_links_.insert(LinkId{tx_id, rx_id});
  } else {
    blocked_links_.erase(LinkId{tx_id, rx_id});
  }
}

}  // namespace adhoc::phy
