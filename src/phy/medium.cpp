#include "phy/medium.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/radio.hpp"

namespace adhoc::phy {

Medium::Medium(sim::Simulator& simulator, const PropagationModel& propagation)
    : sim_(simulator), propagation_(propagation) {}

void Medium::attach(Radio& radio) {
  const bool duplicate_id =
      std::any_of(radios_.begin(), radios_.end(),
                  [&](const Radio* r) { return r->id() == radio.id(); });
  if (duplicate_id) throw std::invalid_argument("Medium: duplicate radio id");
  radios_.push_back(&radio);
}

void Medium::begin_transmission(const Radio& tx, const TxDescriptor& desc, sim::Time duration) {
  ++transmissions_;
  const SignalId sid = next_signal_id_++;
  const sim::Time now = sim_.now();
  for (Radio* rx : radios_) {
    if (rx == &tx) continue;
    if (!blocked_links_.empty() && blocked_links_.contains(LinkId{tx.id(), rx->id()})) {
      ++deliveries_blocked_;
      continue;
    }
    const double dist_m = distance(tx.position(), rx->position());
    const auto delay_ns =
        static_cast<std::int64_t>(dist_m / kSpeedOfLight * 1e9);
    const sim::Time delay = sim::Time::ns(std::max<std::int64_t>(delay_ns, 1));
    const LinkId link{tx.id(), rx->id()};
    const double rx_dbm =
        propagation_.rx_power_dbm(tx.params().tx_power_dbm, tx.position(), rx->position(), now,
                                  link);
    const sim::Time start_at = now + delay;
    const sim::Time end_at = start_at + duration;
    sim_.at(start_at, [rx, sid, rx_dbm, desc, end_at] {
      rx->signal_start(sid, rx_dbm, desc, end_at);
    }, "phy.signal_start");
    sim_.at(end_at, [rx, sid] { rx->signal_end(sid); }, "phy.signal_end");
  }
}

void Medium::begin_interference(std::uint32_t emitter_id, const Position& pos, double power_dbm,
                                sim::Time duration) {
  ++interference_bursts_;
  const SignalId sid = next_signal_id_++;
  const sim::Time now = sim_.now();
  for (Radio* rx : radios_) {
    const double dist_m = distance(pos, rx->position());
    const auto delay_ns =
        static_cast<std::int64_t>(dist_m / kSpeedOfLight * 1e9);
    const sim::Time delay = sim::Time::ns(std::max<std::int64_t>(delay_ns, 1));
    const LinkId link{emitter_id, rx->id()};
    const double rx_dbm = propagation_.rx_power_dbm(power_dbm, pos, rx->position(), now, link);
    const sim::Time start_at = now + delay;
    const sim::Time end_at = start_at + duration;
    sim_.at(start_at, [rx, sid, rx_dbm, end_at] { rx->noise_start(sid, rx_dbm, end_at); },
            "phy.noise_start");
    sim_.at(end_at, [rx, sid] { rx->signal_end(sid); }, "phy.signal_end");
  }
}

void Medium::set_link_blocked(std::uint32_t tx_id, std::uint32_t rx_id, bool blocked) {
  if (blocked) {
    blocked_links_.insert(LinkId{tx_id, rx_id});
  } else {
    blocked_links_.erase(LinkId{tx_id, rx_id});
  }
}

}  // namespace adhoc::phy
