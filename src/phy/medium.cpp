#include "phy/medium.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/radio.hpp"

namespace adhoc::phy {

Medium::Medium(sim::Simulator& simulator, const PropagationModel& propagation)
    : sim_(simulator), propagation_(propagation) {}

void Medium::attach(Radio& radio) {
  const bool duplicate_id =
      std::any_of(radios_.begin(), radios_.end(),
                  [&](const Radio* r) { return r->id() == radio.id(); });
  if (duplicate_id) throw std::invalid_argument("Medium: duplicate radio id");
  radios_.push_back(&radio);
}

void Medium::begin_transmission(const Radio& tx, const TxDescriptor& desc, sim::Time duration) {
  ++transmissions_;
  const SignalId sid = next_signal_id_++;
  const sim::Time now = sim_.now();
  for (Radio* rx : radios_) {
    if (rx == &tx) continue;
    const double dist_m = distance(tx.position(), rx->position());
    const auto delay_ns =
        static_cast<std::int64_t>(dist_m / kSpeedOfLight * 1e9);
    const sim::Time delay = sim::Time::ns(std::max<std::int64_t>(delay_ns, 1));
    const LinkId link{tx.id(), rx->id()};
    const double rx_dbm =
        propagation_.rx_power_dbm(tx.params().tx_power_dbm, tx.position(), rx->position(), now,
                                  link);
    const sim::Time start_at = now + delay;
    const sim::Time end_at = start_at + duration;
    sim_.at(start_at, [rx, sid, rx_dbm, desc, end_at] {
      rx->signal_start(sid, rx_dbm, desc, end_at);
    }, "phy.signal_start");
    sim_.at(end_at, [rx, sid] { rx->signal_end(sid); }, "phy.signal_end");
  }
}

}  // namespace adhoc::phy
