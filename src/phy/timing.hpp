#pragma once
// IEEE 802.11b airtime arithmetic (Table 1 of the paper).
//
// Every frame is a PLCP preamble+header transmitted at 1 Mbps (long
// format; 2 Mbps header for the short format) followed by the PSDU at the
// frame's own rate. These functions are shared by the MAC (duration/NAV
// fields, timeouts) and by the analytical throughput model, so both views
// of the protocol can never disagree on airtime.

#include <cstdint>

#include "phy/rates.hpp"
#include "sim/time.hpp"

namespace adhoc::phy {

enum class Preamble : std::uint8_t { kLong, kShort };

/// Protocol timing parameters (defaults = Table 1 of the paper).
struct Timing {
  sim::Time slot = sim::Time::us(20);
  sim::Time sifs = sim::Time::us(10);
  sim::Time difs = sim::Time::us(50);     // SIFS + 2 slots
  std::uint32_t plcp_long_preamble_bits = 144;
  std::uint32_t plcp_header_bits = 48;
  std::uint32_t cw_min = 32;              // paper's Table 1 (slots)
  std::uint32_t cw_max = 1024;

  /// PLCP duration. Long: 192 bits at 1 Mbps = 192 us. Short: 72-bit
  /// preamble at 1 Mbps + 48-bit header at 2 Mbps = 96 us.
  [[nodiscard]] sim::Time plcp_duration(Preamble p) const;

  /// Airtime of `bits` payload bits at rate `r` (rounded up to ns).
  [[nodiscard]] sim::Time payload_duration(std::uint32_t bits, Rate r) const;

  /// Full frame airtime: PLCP + PSDU.
  [[nodiscard]] sim::Time frame_duration(std::uint32_t psdu_bits, Rate r,
                                         Preamble p = Preamble::kLong) const;
};

/// MAC-level frame body sizes in bits, as used by the paper (Table 1):
/// the FCS is accounted inside the 272-bit MAC header per footnote 3.
struct FrameBits {
  static constexpr std::uint32_t kMacHeaderAndFcs = 272;  // data frame header + FCS
  static constexpr std::uint32_t kAck = 112;
  static constexpr std::uint32_t kRts = 160;
  static constexpr std::uint32_t kCts = 112;
};

}  // namespace adhoc::phy
