#include "phy/shadowing.hpp"

#include <cmath>

namespace adhoc::phy {

ShadowedPropagation::ShadowedPropagation(const PropagationModel& base, ShadowingParams params,
                                         sim::Rng seed_stream)
    : base_(base), params_(params), seed_stream_(seed_stream) {}

double ShadowedPropagation::path_loss_db(double distance_m) const {
  return base_.path_loss_db(distance_m);
}

double ShadowedPropagation::distance_for_loss(double loss_db) const {
  return base_.distance_for_loss(loss_db);
}

ShadowedPropagation::LinkState& ShadowedPropagation::state_for(LinkId link) const {
  auto it = links_.find(link);
  if (it == links_.end()) {
    const std::uint64_t stream_id =
        (static_cast<std::uint64_t>(link.tx) << 32) | static_cast<std::uint64_t>(link.rx);
    it = links_.emplace(link, LinkState{0.0, sim::Time::zero(), seed_stream_.substream(stream_id),
                                        false}).first;
  }
  return it->second;
}

double ShadowedPropagation::shadowing_db(LinkId link, sim::Time now) const {
  LinkState& st = state_for(link);
  if (!st.initialized) {
    // Stationary start: draw from the marginal N(0, sigma).
    st.value_db = st.rng.normal(0.0, params_.sigma_db);
    st.last = now;
    st.initialized = true;
    return st.value_db + params_.day_offset_db;
  }
  if (now > st.last && params_.correlation_time > sim::Time::zero()) {
    const double dt = (now - st.last).to_sec();
    const double tc = params_.correlation_time.to_sec();
    const double rho = std::exp(-dt / tc);
    const double innovation_sigma = params_.sigma_db * std::sqrt(1.0 - rho * rho);
    st.value_db = rho * st.value_db + st.rng.normal(0.0, innovation_sigma);
    st.last = now;
  }
  return st.value_db + params_.day_offset_db;
}

double ShadowedPropagation::rx_power_dbm(double tx_power_dbm, const Position& tx,
                                         const Position& rx, sim::Time now, LinkId link) const {
  const double deterministic = base_.rx_power_dbm(tx_power_dbm, tx, rx, now, link);
  return deterministic + shadowing_db(link, now);
}

}  // namespace adhoc::phy
