#include "phy/calibration.hpp"

#include <cmath>

namespace adhoc::phy {

double threshold_for_range(const PropagationModel& model, double tx_power_dbm, double range_m) {
  return tx_power_dbm - model.path_loss_db(range_m);
}

double range_for_threshold(const PropagationModel& model, double tx_power_dbm,
                           double threshold_dbm) {
  return model.distance_for_loss(tx_power_dbm - threshold_dbm);
}

std::array<double, 4> sensitivities_for_ranges(const PropagationModel& model, double tx_power_dbm,
                                               const std::array<double, 4>& ranges_m) {
  std::array<double, 4> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = threshold_for_range(model, tx_power_dbm, ranges_m[i]);
  }
  return out;
}

PhyParams paper_calibrated_params(const PropagationModel& model, double tx_power_dbm) {
  PhyParams p;
  p.tx_power_dbm = tx_power_dbm;
  p.sensitivity_dbm = sensitivities_for_ranges(model, tx_power_dbm, kPaperRangesM);
  p.cs_threshold_dbm = threshold_for_range(model, tx_power_dbm, kPaperPcsRangeM);
  return p;
}

const LogDistance& default_outdoor_model() {
  static const LogDistance model{3.3, 40.0, 1.0};
  return model;
}

double interference_range_factor(double path_loss_exponent, double sinr_threshold_db) {
  return std::pow(10.0, sinr_threshold_db / (10.0 * path_loss_exponent));
}

PhyParams ns2_style_params(const PropagationModel& model, double tx_power_dbm) {
  PhyParams p;
  p.tx_power_dbm = tx_power_dbm;
  const double sens = threshold_for_range(model, tx_power_dbm, 250.0);
  p.sensitivity_dbm = {sens, sens, sens, sens};  // rate-independent, as in ns-2
  p.cs_threshold_dbm = threshold_for_range(model, tx_power_dbm, 550.0);
  // ns-2's threshold PHY has no thermal noise: reception succeeds purely
  // by RXThresh/CPThresh comparisons. Push the noise floor far below the
  // 250 m sensitivity so SINR never binds without an actual interferer.
  p.noise_floor_dbm = sens - 30.0;
  return p;
}

}  // namespace adhoc::phy
