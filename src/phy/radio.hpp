#pragma once
// 802.11b radio: transmit/receive/carrier-sense state machine.
//
// Reception model (documented in DESIGN.md §6):
//  * A frame locks the receiver if the radio is idle when the signal
//    arrives, the rx power reaches the 1 Mbps (PLCP) sensitivity, and the
//    instantaneous SINR clears the 1 Mbps threshold. PLCP preamble and
//    header are always sent at 1 Mbps, so frames are *detectable* well
//    beyond the range at which their payload is *decodable* — the paper's
//    key multirate observation.
//  * A locked frame decodes successfully iff rx power also reaches the
//    sensitivity of its payload rate and SINR never drops below that
//    rate's threshold while locked ("capture" behaviour [2,3]).
//  * A detectable-but-not-decodable frame (out of payload range, or
//    corrupted by interference) is delivered as an rx *error*, which the
//    MAC answers with EIFS, as the standard requires.
//  * Carrier sense is energy-based: busy whenever transmitting, locked,
//    or total in-band power (noise + all signals, decodable or not)
//    reaches the CS threshold. This makes PCS_range independent of rate
//    and much larger than TX_range.
//  * Half duplex: starting a transmission aborts any lock in progress;
//    signals arriving during TX are tracked for energy only and can never
//    be decoded (missed preamble).
//  * Noise signals (non-802.11 interference from Medium's emitter
//    interface) contribute energy to CCA and SINR like any signal but
//    are never lock candidates.
//  * A radio can be powered off (crash faults): it stops hearing the
//    medium, reports CCA busy so the MAC freezes deterministically, and
//    completes in-progress MAC timing locally without radiating. Time
//    spent off is accounted to Mode::kOff and draws no energy.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "obs/trace.hpp"
#include "phy/medium.hpp"
#include "phy/mobility.hpp"
#include "phy/phy_params.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"

namespace adhoc::phy {

/// MAC-side callbacks. All calls are made from scheduler context.
class RadioListener {
 public:
  virtual ~RadioListener() = default;

  /// Carrier-sense edge (busy <-> idle). Fired only on changes.
  virtual void on_cca(bool busy) = 0;

  /// A frame was received and decoded. `rx_dbm` is its received power.
  virtual void on_rx_ok(std::shared_ptr<const void> payload, Rate rate, double rx_dbm) = 0;

  /// A frame was detected but could not be decoded (out of payload range
  /// or hit by interference). The MAC must respond with EIFS.
  virtual void on_rx_error() = 0;

  /// Own transmission completed (the air is ours until this fires).
  virtual void on_tx_end() = 0;
};

class Radio {
 public:
  /// `id` must be unique among radios on the same medium; it keys the
  /// directed shadowing processes.
  Radio(sim::Simulator& simulator, Medium& medium, std::uint32_t id, PhyParams params,
        Position position);

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  void set_listener(RadioListener* listener) { listener_ = listener; }

  /// Publish tx/rx/collision/capture events into a cross-layer trace
  /// sink (nullptr disables; the radio's id is the track).
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  [[nodiscard]] std::uint32_t id() const { return id_; }
  /// Current position: the mobility model's if attached, else the static
  /// position.
  [[nodiscard]] Position position() const;
  void set_position(const Position& p) {
    position_ = p;
    medium_.notify_moved(*this);  // re-bin in the spatial index
  }
  /// Attach a mobility model (must outlive the radio; nullptr detaches).
  void set_mobility(const MobilityModel* m) {
    mobility_ = m;
    medium_.notify_mobility_changed(*this);
  }
  /// Speed bound for the medium's spatial index: the mobility model's
  /// limit, or 0 (static) without one.
  [[nodiscard]] double max_speed_bound() const {
    return mobility_ == nullptr ? 0.0 : mobility_->max_speed_mps();
  }
  [[nodiscard]] const PhyParams& params() const { return params_; }

  [[nodiscard]] bool transmitting() const;
  [[nodiscard]] bool receiving() const { return lock_.has_value(); }

  /// Power the radio off/on (crash & recovery faults). Powering off
  /// drops the current lock and every tracked signal; while off the
  /// radio neither hears the medium nor radiates (start_tx keeps its
  /// local timing so MAC sequences complete, but nothing is fanned out).
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Runtime tx-power / antenna-gain step (fault injection); applies
  /// from the next transmission on.
  void set_tx_power_dbm(double dbm) { params_.tx_power_dbm = dbm; }

  /// Energy-based clear channel assessment (see class comment).
  [[nodiscard]] bool cca_busy() const;

  /// Begin transmitting; returns the frame airtime. Must not be called
  /// while already transmitting.
  sim::Time start_tx(const TxDescriptor& desc);

  // --- Medium-facing interface ---------------------------------------
  void signal_start(SignalId sid, double rx_dbm, const TxDescriptor& desc, sim::Time end_time);
  /// Undecodable energy burst (interference): counts toward CCA and
  /// SINR, corrupts the current lock if it dips below threshold, but is
  /// never a lock candidate. Ends via signal_end like any signal.
  void noise_start(SignalId sid, double rx_dbm, sim::Time end_time);
  void signal_end(SignalId sid);

  // --- Introspection for tests ---------------------------------------
  [[nodiscard]] std::size_t active_signals() const { return signals_.size(); }
  [[nodiscard]] double total_signal_dbm() const;

  // --- Energy accounting ----------------------------------------------
  enum class Mode : std::uint8_t { kIdle = 0, kRx = 1, kTx = 2, kOff = 3 };

  /// Total energy consumed up to now (joules).
  [[nodiscard]] double energy_consumed_j() const;
  /// Cumulative time spent in a mode up to now.
  [[nodiscard]] sim::Time time_in_mode(Mode m) const;
  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  struct ActiveSignal {
    double power_mw = 0.0;
    TxDescriptor desc;
    sim::Time end;
  };
  struct Lock {
    SignalId sid = 0;
    double power_mw = 0.0;
    TxDescriptor desc;
    bool payload_decodable = false;  // power reached the payload rate's sensitivity
    bool corrupted = false;          // SINR dipped below threshold while locked
  };

  /// Interference power (mW) seen by the locked signal: noise + all other
  /// active signals.
  [[nodiscard]] double interference_mw(SignalId excluding) const;

  /// Re-evaluate the locked frame's SINR after the signal set changed.
  void update_lock_sinr();

  /// Recompute CCA and fire the listener on an edge.
  void update_cca();

  /// Account elapsed time to the current mode, then switch to `m`.
  void set_mode(Mode m);
  /// The mode implied by the radio's current state (no lock/tx = idle).
  [[nodiscard]] Mode implied_mode() const;

  sim::Simulator& sim_;
  Medium& medium_;
  std::uint32_t id_;
  PhyParams params_;
  Position position_;
  const MobilityModel* mobility_ = nullptr;
  RadioListener* listener_ = nullptr;
  obs::TraceSink* trace_ = nullptr;

  std::map<SignalId, ActiveSignal> signals_;
  std::optional<Lock> lock_;
  sim::Time tx_until_ = sim::Time::zero();
  bool last_cca_busy_ = false;
  bool enabled_ = true;

  Mode mode_ = Mode::kIdle;
  sim::Time mode_since_ = sim::Time::zero();
  std::array<sim::Time, 4> mode_time_{};  // accumulated, excluding current stint

  // Counters for tests/benches.
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t frames_errored_ = 0;
  std::uint64_t frames_missed_while_tx_ = 0;
  std::uint64_t frames_missed_while_locked_ = 0;
  std::uint64_t frames_below_plcp_threshold_ = 0;
  std::uint64_t frames_failed_plcp_sinr_ = 0;
  std::uint64_t frames_captured_over_lock_ = 0;
  std::uint64_t noise_bursts_heard_ = 0;
  std::uint64_t frames_missed_while_off_ = 0;
  std::uint64_t tx_while_disabled_ = 0;

 public:
  [[nodiscard]] std::uint64_t frames_decoded() const { return frames_decoded_; }
  [[nodiscard]] std::uint64_t frames_errored() const { return frames_errored_; }
  [[nodiscard]] std::uint64_t frames_missed_while_tx() const { return frames_missed_while_tx_; }
  /// Arrivals that found the receiver locked on another frame.
  [[nodiscard]] std::uint64_t frames_missed_while_locked() const {
    return frames_missed_while_locked_;
  }
  [[nodiscard]] std::uint64_t frames_below_plcp_threshold() const {
    return frames_below_plcp_threshold_;
  }
  [[nodiscard]] std::uint64_t frames_failed_plcp_sinr() const {
    return frames_failed_plcp_sinr_;
  }
  /// Strong arrivals that stole the receiver from a weaker lock.
  [[nodiscard]] std::uint64_t frames_captured_over_lock() const {
    return frames_captured_over_lock_;
  }
  /// Non-802.11 interference bursts whose energy reached this radio.
  [[nodiscard]] std::uint64_t noise_bursts_heard() const { return noise_bursts_heard_; }
  /// Arrivals (signals or noise) discarded because the radio was off.
  [[nodiscard]] std::uint64_t frames_missed_while_off() const { return frames_missed_while_off_; }
  /// Transmissions attempted while powered off (timed locally, never radiated).
  [[nodiscard]] std::uint64_t tx_while_disabled() const { return tx_while_disabled_; }
};

}  // namespace adhoc::phy
