#include "phy/propagation.hpp"

#include <cmath>
#include <stdexcept>

namespace adhoc::phy {

namespace {
constexpr double kMinDistance = 0.1;  // clamp to avoid singularities at d = 0

double clamped_distance(const Position& a, const Position& b) {
  return std::max(distance(a, b), kMinDistance);
}
}  // namespace

// ---------------------------------------------------------------- FreeSpace

FreeSpace::FreeSpace(double frequency_hz) {
  if (frequency_hz <= 0) throw std::invalid_argument("FreeSpace: bad frequency");
  const double lambda = kSpeedOfLight / frequency_hz;
  const double pi = 3.14159265358979323846;
  const_db_ = 20.0 * std::log10(4.0 * pi / lambda);
}

double FreeSpace::path_loss_db(double d) const {
  return const_db_ + 20.0 * std::log10(std::max(d, kMinDistance));
}

double FreeSpace::distance_for_loss(double loss_db) const {
  return std::pow(10.0, (loss_db - const_db_) / 20.0);
}

double FreeSpace::rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx,
                               sim::Time /*now*/, LinkId /*link*/) const {
  return tx_power_dbm - path_loss_db(clamped_distance(tx, rx));
}

// -------------------------------------------------------------- LogDistance

LogDistance::LogDistance(double exponent, double ref_loss_db, double ref_dist_m)
    : n_(exponent), pl0_db_(ref_loss_db), d0_m_(ref_dist_m) {
  if (exponent <= 0 || ref_dist_m <= 0) throw std::invalid_argument("LogDistance: bad params");
}

double LogDistance::path_loss_db(double d) const {
  return pl0_db_ + 10.0 * n_ * std::log10(std::max(d, kMinDistance) / d0_m_);
}

double LogDistance::distance_for_loss(double loss_db) const {
  return d0_m_ * std::pow(10.0, (loss_db - pl0_db_) / (10.0 * n_));
}

double LogDistance::rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx,
                                 sim::Time /*now*/, LinkId /*link*/) const {
  return tx_power_dbm - path_loss_db(clamped_distance(tx, rx));
}

// ------------------------------------------------------------- TwoRayGround

TwoRayGround::TwoRayGround(double antenna_height_m, double frequency_hz)
    : ht_(antenna_height_m), hr_(antenna_height_m), friis_(frequency_hz) {
  if (antenna_height_m <= 0) throw std::invalid_argument("TwoRayGround: bad height");
  const double lambda = kSpeedOfLight / frequency_hz;
  const double pi = 3.14159265358979323846;
  crossover_m_ = 4.0 * pi * ht_ * hr_ / lambda;
}

double TwoRayGround::path_loss_db(double d) const {
  d = std::max(d, kMinDistance);
  if (d < crossover_m_) return friis_.path_loss_db(d);
  return 40.0 * std::log10(d) - 10.0 * std::log10(ht_ * ht_ * hr_ * hr_);
}

double TwoRayGround::distance_for_loss(double loss_db) const {
  const double at_crossover = path_loss_db(crossover_m_);
  if (loss_db <= at_crossover) return friis_.distance_for_loss(loss_db);
  return std::pow(10.0, (loss_db + 10.0 * std::log10(ht_ * ht_ * hr_ * hr_)) / 40.0);
}

double TwoRayGround::rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx,
                                  sim::Time /*now*/, LinkId /*link*/) const {
  return tx_power_dbm - path_loss_db(clamped_distance(tx, rx));
}

}  // namespace adhoc::phy
