#pragma once
// Radio propagation models.
//
// Deterministic path-loss models (free space, log-distance, two-ray) plus
// a stochastic wrapper adding time-varying, per-direction log-normal
// shadowing (see shadowing.hpp). The paper's key observation — that
// TX/PCS/IF ranges are neither constant nor symmetric in the field — is
// reproduced by the stochastic wrapper; the deterministic models give the
// mean behaviour used for calibration.

#include <memory>

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace adhoc::phy {

/// Directed link identity: shadowing is sampled per (tx, rx) pair so the
/// channel can be asymmetric, as measured in the paper.
struct LinkId {
  std::uint32_t tx = 0;
  std::uint32_t rx = 0;
  friend bool operator==(const LinkId&, const LinkId&) = default;
};

struct LinkIdHash {
  std::size_t operator()(const LinkId& l) const {
    return (static_cast<std::size_t>(l.tx) << 32) ^ l.rx;
  }
};

/// Interface: received power for a transmission between two positions.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Received power in dBm at `rx` for a transmitter at `tx` emitting
  /// `tx_power_dbm`, evaluated at simulation time `now` on directed link
  /// `link` (time/link matter only for stochastic models).
  [[nodiscard]] virtual double rx_power_dbm(double tx_power_dbm, const Position& tx,
                                            const Position& rx, sim::Time now,
                                            LinkId link) const = 0;

  /// Mean path loss (dB) at distance d — the deterministic component.
  [[nodiscard]] virtual double path_loss_db(double distance_m) const = 0;

  /// Inverse of path_loss_db: the distance at which the mean path loss
  /// equals `loss_db`. Used by range calibration.
  [[nodiscard]] virtual double distance_for_loss(double loss_db) const = 0;

  /// How far (dB) the instantaneous loss can fall below the mean
  /// path_loss_db — i.e., how much *stronger* than the deterministic
  /// prediction a received signal can plausibly be. Deterministic models
  /// return 0; stochastic wrappers return a high-confidence bound. The
  /// medium widens its carrier-sense range cutoff by this margin so
  /// spatial culling stays conservative under fading.
  [[nodiscard]] virtual double stochastic_margin_db() const { return 0.0; }
};

/// Friis free-space model: PL(d) = 20 log10(4 pi d / lambda).
class FreeSpace final : public PropagationModel {
 public:
  explicit FreeSpace(double frequency_hz = 2.437e9);

  double rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx, sim::Time now,
                      LinkId link) const override;
  double path_loss_db(double distance_m) const override;
  double distance_for_loss(double loss_db) const override;

 private:
  double const_db_;  // 20 log10(4 pi / lambda)
};

/// Log-distance model: PL(d) = PL0 + 10 n log10(d / d0).
///
/// Defaults (n = 3.3, PL0 = 40 dB at 1 m) describe an open outdoor field
/// with ground clutter — chosen so the calibrated per-rate ranges land on
/// the paper's Table 3 (see calibration.hpp).
class LogDistance final : public PropagationModel {
 public:
  explicit LogDistance(double exponent = 3.3, double ref_loss_db = 40.0, double ref_dist_m = 1.0);

  double rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx, sim::Time now,
                      LinkId link) const override;
  double path_loss_db(double distance_m) const override;
  double distance_for_loss(double loss_db) const override;

  [[nodiscard]] double exponent() const { return n_; }

 private:
  double n_;
  double pl0_db_;
  double d0_m_;
};

/// Two-ray ground reflection: free space up to the crossover distance,
/// then PL(d) = 40 log10(d) - 10 log10(ht^2 hr^2).
class TwoRayGround final : public PropagationModel {
 public:
  TwoRayGround(double antenna_height_m = 1.0, double frequency_hz = 2.437e9);

  double rx_power_dbm(double tx_power_dbm, const Position& tx, const Position& rx, sim::Time now,
                      LinkId link) const override;
  double path_loss_db(double distance_m) const override;
  double distance_for_loss(double loss_db) const override;

  [[nodiscard]] double crossover_m() const { return crossover_m_; }

 private:
  double ht_;
  double hr_;
  double crossover_m_;
  FreeSpace friis_;
};

}  // namespace adhoc::phy
