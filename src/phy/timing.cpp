#include "phy/timing.hpp"

#include <cmath>

namespace adhoc::phy {

sim::Time Timing::plcp_duration(Preamble p) const {
  if (p == Preamble::kLong) {
    // Preamble and header both at 1 Mbps: 1 bit == 1 us.
    return sim::Time::us(plcp_long_preamble_bits + plcp_header_bits);
  }
  // Short format: 72-bit preamble at 1 Mbps, 48-bit header at 2 Mbps.
  return sim::Time::us(72) + sim::Time::from_us(48.0 / 2.0);
}

sim::Time Timing::payload_duration(std::uint32_t bits, Rate r) const {
  const double us = static_cast<double>(bits) / rate_bits_per_us(r);
  // Round up to whole nanoseconds so airtimes never undershoot.
  return sim::Time::ns(static_cast<std::int64_t>(std::ceil(us * 1000.0)));
}

sim::Time Timing::frame_duration(std::uint32_t psdu_bits, Rate r, Preamble p) const {
  return plcp_duration(p) + payload_duration(psdu_bits, r);
}

}  // namespace adhoc::phy
