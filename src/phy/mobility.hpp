#pragma once
// Station mobility.
//
// The paper's testbed is static, but its motivation (and its warning
// that short real-world ranges mean frequent route recalculation for
// mobile stations) is mobility. A MobilityModel maps simulation time to
// a position; a Radio with a model attached reports a moving position to
// the medium, so every transmission is evaluated at the station's
// current location.

#include <cmath>
#include <limits>
#include <vector>

#include "phy/units.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace adhoc::phy {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  [[nodiscard]] virtual Position position_at(sim::Time t) const = 0;

  /// Upper bound on the station's ground speed (m/s), used by the
  /// medium's spatial index to decide how long a cached position stays
  /// trustworthy. The default — unbounded — is always safe: it forces a
  /// position re-read on every index refresh. Models that know their
  /// speed limit should override for cheap lazy refresh.
  [[nodiscard]] virtual double max_speed_mps() const {
    return std::numeric_limits<double>::infinity();
  }
};

/// Constant-velocity motion from a start position, optionally stopping.
class LinearMobility final : public MobilityModel {
 public:
  /// Moves from `start` with velocity (vx, vy) m/s beginning at `t0`;
  /// if `stop_at` is finite, the station halts there.
  LinearMobility(Position start, double vx_mps, double vy_mps,
                 sim::Time t0 = sim::Time::zero(), sim::Time stop_at = sim::Time::infinity());

  Position position_at(sim::Time t) const override;

  [[nodiscard]] double max_speed_mps() const override {
    return std::sqrt(vx_ * vx_ + vy_ * vy_);
  }

 private:
  Position start_;
  double vx_;
  double vy_;
  sim::Time t0_;
  sim::Time stop_at_;
};

/// Random waypoint model (the canonical MANET mobility model): pick a
/// uniform point in the field, walk there at a uniform-random speed,
/// pause, repeat. The trajectory is generated lazily but
/// deterministically from the seed, so queries at any time are
/// reproducible.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Params {
    double width_m = 300.0;
    double height_m = 300.0;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;   // pedestrian, as the paper's use cases
    sim::Time pause = sim::Time::sec(2);
  };

  RandomWaypointMobility(Position start, Params params, sim::Rng rng);

  Position position_at(sim::Time t) const override;

  [[nodiscard]] double max_speed_mps() const override { return params_.max_speed_mps; }

 private:
  struct Leg {
    sim::Time depart;   // start of motion (after the pause)
    sim::Time arrive;   // reaches `to`
    Position from;
    Position to;
  };

  /// Extend the trajectory until it covers time t.
  void extend_to(sim::Time t) const;

  Params params_;
  mutable sim::Rng rng_;
  mutable std::vector<Leg> legs_;
};

/// Piecewise-linear waypoint path: the station glides between waypoints
/// and parks at the last one.
class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    sim::Time at;
    Position pos;
  };

  /// Waypoints must be sorted by time and non-empty.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);

  Position position_at(sim::Time t) const override;

  [[nodiscard]] std::size_t waypoint_count() const { return waypoints_.size(); }

  /// Fastest glide over any segment (0 for a single parked waypoint).
  [[nodiscard]] double max_speed_mps() const override { return max_speed_mps_; }

 private:
  std::vector<Waypoint> waypoints_;
  double max_speed_mps_ = 0.0;
};

/// Gauss-Markov mobility (Camp/Boleng/Davies survey, §2.5): speed and
/// direction are Ornstein-Uhlenbeck processes updated on a fixed tick,
///
///   s' = alpha s + (1 - alpha) mean_s + sqrt(1 - alpha^2) sigma_s N(0,1)
///   d' = alpha d + (1 - alpha) mean_d + sqrt(1 - alpha^2) sigma_d N(0,1)
///
/// so motion is temporally correlated (no random-waypoint zig-zag) with
/// tunable memory. Near a field edge the mean direction is steered back
/// toward the interior, the canonical edge treatment. Speed is clamped
/// to [0, max_speed_mps], which doubles as the hard bound the spatial
/// index relies on. The trajectory is extended lazily but
/// deterministically from the seed, like RandomWaypointMobility.
class GaussMarkovMobility final : public MobilityModel {
 public:
  struct Params {
    double width_m = 300.0;
    double height_m = 300.0;
    double mean_speed_mps = 1.5;
    double max_speed_mps = 3.0;        ///< hard clamp; must be >= mean
    double alpha = 0.75;               ///< memory in [0, 1)
    double sigma_speed_mps = 0.5;
    double sigma_direction_rad = 0.6;
    sim::Time update = sim::Time::sec(1);  ///< OU tick; must be > 0
    double edge_margin_m = 20.0;       ///< steer-back distance from edges
  };

  GaussMarkovMobility(Position start, Params params, sim::Rng rng);

  Position position_at(sim::Time t) const override;

  [[nodiscard]] double max_speed_mps() const override { return params_.max_speed_mps; }

 private:
  struct Step {
    sim::Time at;
    Position pos;
    double speed_mps = 0.0;
    double direction_rad = 0.0;
  };

  /// Extend the step sequence until it covers time t.
  void extend_to(sim::Time t) const;

  Params params_;
  mutable sim::Rng rng_;
  mutable std::vector<Step> steps_;
};

}  // namespace adhoc::phy
