#pragma once
// Station mobility.
//
// The paper's testbed is static, but its motivation (and its warning
// that short real-world ranges mean frequent route recalculation for
// mobile stations) is mobility. A MobilityModel maps simulation time to
// a position; a Radio with a model attached reports a moving position to
// the medium, so every transmission is evaluated at the station's
// current location.

#include <vector>

#include "phy/units.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace adhoc::phy {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  [[nodiscard]] virtual Position position_at(sim::Time t) const = 0;
};

/// Constant-velocity motion from a start position, optionally stopping.
class LinearMobility final : public MobilityModel {
 public:
  /// Moves from `start` with velocity (vx, vy) m/s beginning at `t0`;
  /// if `stop_at` is finite, the station halts there.
  LinearMobility(Position start, double vx_mps, double vy_mps,
                 sim::Time t0 = sim::Time::zero(), sim::Time stop_at = sim::Time::infinity());

  Position position_at(sim::Time t) const override;

 private:
  Position start_;
  double vx_;
  double vy_;
  sim::Time t0_;
  sim::Time stop_at_;
};

/// Random waypoint model (the canonical MANET mobility model): pick a
/// uniform point in the field, walk there at a uniform-random speed,
/// pause, repeat. The trajectory is generated lazily but
/// deterministically from the seed, so queries at any time are
/// reproducible.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Params {
    double width_m = 300.0;
    double height_m = 300.0;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;   // pedestrian, as the paper's use cases
    sim::Time pause = sim::Time::sec(2);
  };

  RandomWaypointMobility(Position start, Params params, sim::Rng rng);

  Position position_at(sim::Time t) const override;

 private:
  struct Leg {
    sim::Time depart;   // start of motion (after the pause)
    sim::Time arrive;   // reaches `to`
    Position from;
    Position to;
  };

  /// Extend the trajectory until it covers time t.
  void extend_to(sim::Time t) const;

  Params params_;
  mutable sim::Rng rng_;
  mutable std::vector<Leg> legs_;
};

/// Piecewise-linear waypoint path: the station glides between waypoints
/// and parks at the last one.
class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    sim::Time at;
    Position pos;
  };

  /// Waypoints must be sorted by time and non-empty.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);

  Position position_at(sim::Time t) const override;

  [[nodiscard]] std::size_t waypoint_count() const { return waypoints_.size(); }

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace adhoc::phy
