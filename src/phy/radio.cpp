#include "phy/radio.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace adhoc::phy {

Radio::Radio(sim::Simulator& simulator, Medium& medium, std::uint32_t id, PhyParams params,
             Position position)
    : sim_(simulator),
      medium_(medium),
      id_(id),
      params_(params),
      position_(position),
      mode_since_(simulator.now()) {
  medium_.attach(*this);
}

bool Radio::transmitting() const { return sim_.now() < tx_until_; }

Position Radio::position() const {
  if (mobility_ != nullptr) return mobility_->position_at(sim_.now());
  return position_;
}

// --------------------------------------------------------- energy accounting

Radio::Mode Radio::implied_mode() const {
  if (!enabled_) return Mode::kOff;
  if (transmitting()) return Mode::kTx;
  if (lock_.has_value()) return Mode::kRx;
  return Mode::kIdle;
}

void Radio::set_mode(Mode m) {
  const sim::Time now = sim_.now();
  mode_time_[static_cast<std::size_t>(mode_)] += now - mode_since_;
  mode_since_ = now;
  mode_ = m;
}

sim::Time Radio::time_in_mode(Mode m) const {
  sim::Time t = mode_time_[static_cast<std::size_t>(m)];
  if (m == mode_) t += sim_.now() - mode_since_;
  return t;
}

double Radio::energy_consumed_j() const {
  // Time spent in Mode::kOff draws no power.
  return time_in_mode(Mode::kIdle).to_sec() * params_.power_idle_w +
         time_in_mode(Mode::kRx).to_sec() * params_.power_rx_w +
         time_in_mode(Mode::kTx).to_sec() * params_.power_tx_w;
}

double Radio::total_signal_dbm() const {
  double total_mw = 0.0;
  for (const auto& [sid, sig] : signals_) total_mw += sig.power_mw;
  return mw_to_dbm(total_mw);  // -inf when no signal is on the air
}

bool Radio::cca_busy() const {
  // A powered-off radio reports busy: the MAC above freezes (cancels
  // access timers, defers) instead of blind-transmitting into a dead
  // front end, and resumes deterministically on the idle edge at
  // power-on.
  if (!enabled_) return true;
  if (transmitting() || lock_.has_value()) return true;
  // Energy detect compares the aggregate *signal* power to the CS
  // threshold (ns-2 style). The thermal noise floor is excluded here —
  // it only enters SINR — so calibrated PCS ranges below the noise floor
  // remain meaningful.
  double total_mw = 0.0;
  for (const auto& [sid, sig] : signals_) total_mw += sig.power_mw;
  return total_mw >= dbm_to_mw(params_.cs_threshold_dbm);
}

void Radio::update_cca() {
  // Every radio state change funnels through here; settle the energy
  // account before evaluating carrier sense.
  set_mode(implied_mode());
  const bool busy = cca_busy();
  if (busy != last_cca_busy_) {
    last_cca_busy_ = busy;
    if (listener_ != nullptr) listener_->on_cca(busy);
  }
}

double Radio::interference_mw(SignalId excluding) const {
  double total = dbm_to_mw(params_.noise_floor_dbm);
  for (const auto& [sid, sig] : signals_) {
    if (sid != excluding) total += sig.power_mw;
  }
  return total;
}

sim::Time Radio::start_tx(const TxDescriptor& desc) {
  if (transmitting()) throw std::logic_error("Radio: start_tx while transmitting");
  // Half duplex: abandoning an in-progress reception loses that frame
  // silently (the preamble's frame never completes at this receiver).
  if (lock_.has_value()) {
    lock_.reset();
    ++frames_missed_while_tx_;
  }
  const sim::Time duration = params_.timing.frame_duration(desc.psdu_bits, desc.rate,
                                                           desc.preamble);
  tx_until_ = sim_.now() + duration;
  if (enabled_) {
    medium_.begin_transmission(*this, desc, duration);
    if (trace_ != nullptr) {
      trace_->span(sim_.now(), duration, obs::Layer::kPhy, id_, obs::EventKind::kPhyTx,
                   rate_mbps(desc.rate), static_cast<double>(desc.psdu_bits));
    }
  } else {
    // Powered off: keep the MAC's timing (tx_end still fires, so RTS/
    // data/response sequences complete locally) but radiate nothing.
    ++tx_while_disabled_;
  }
  sim_.at(tx_until_, [this] {
    if (listener_ != nullptr) listener_->on_tx_end();
    update_cca();
  }, "phy.tx_end");
  update_cca();
  ADHOC_LOG(kTrace, sim_.now(), "phy", "radio " << id_ << " tx start, dur=" << duration.to_us()
                                                << "us rate=" << desc.rate);
  return duration;
}

void Radio::signal_start(SignalId sid, double rx_dbm, const TxDescriptor& desc,
                         sim::Time end_time) {
  if (!enabled_) {
    // Dead front end: the energy is simply not observed. The medium's
    // already-scheduled signal_end for this sid becomes a no-op erase.
    ++frames_missed_while_off_;
    return;
  }
  signals_.emplace(sid, ActiveSignal{dbm_to_mw(rx_dbm), desc, end_time});

  if (transmitting()) {
    ++frames_missed_while_tx_;
    update_cca();
    return;
  }

  if (!lock_.has_value()) {
    // Try to lock: the PLCP (1 Mbps) must be above sensitivity and clear
    // of interference at arrival.
    const bool plcp_power_ok = rx_dbm >= params_.sensitivity(Rate::kR1);
    const double sinr_db = rx_dbm - mw_to_dbm(interference_mw(sid));
    const bool plcp_sinr_ok = sinr_db >= params_.sinr_threshold(Rate::kR1);
    if (plcp_power_ok && plcp_sinr_ok) {
      const bool payload_ok = rx_dbm >= params_.sensitivity(desc.rate) &&
                              sinr_db >= params_.sinr_threshold(desc.rate);
      lock_ = Lock{sid, dbm_to_mw(rx_dbm), desc, payload_ok, false};
      if (!payload_ok) {
        ADHOC_LOG(kTrace, sim_.now(), "phy",
                  "radio " << id_ << " lock plcp-only: rx=" << rx_dbm << " dBm sens("
                           << desc.rate << ")=" << params_.sensitivity(desc.rate)
                           << " sinr=" << sinr_db);
      }
    } else if (!plcp_power_ok) {
      ++frames_below_plcp_threshold_;
    } else {
      ++frames_failed_plcp_sinr_;
    }
  } else if (params_.preamble_capture &&
             dbm_to_mw(rx_dbm) >=
                 lock_->power_mw * dbm_to_mw(params_.capture_switch_margin_db) &&
             rx_dbm >= params_.sensitivity(Rate::kR1)) {
    // Capture: the new arrival overwhelms the locked frame; re-sync.
    const double sinr_db = rx_dbm - mw_to_dbm(interference_mw(sid));
    if (sinr_db >= params_.sinr_threshold(Rate::kR1)) {
      ++frames_captured_over_lock_;
      if (trace_ != nullptr) {
        trace_->instant(sim_.now(), obs::Layer::kPhy, id_, obs::EventKind::kPhyCapture, rx_dbm,
                        sinr_db);
      }
      const bool payload_ok = rx_dbm >= params_.sensitivity(desc.rate) &&
                              sinr_db >= params_.sinr_threshold(desc.rate);
      lock_ = Lock{sid, dbm_to_mw(rx_dbm), desc, payload_ok, false};
    } else {
      ++frames_missed_while_locked_;
      update_lock_sinr();
    }
  } else {
    ++frames_missed_while_locked_;
    update_lock_sinr();
  }
  update_cca();
}

void Radio::noise_start(SignalId sid, double rx_dbm, sim::Time end_time) {
  if (!enabled_) {
    ++frames_missed_while_off_;
    return;
  }
  // Tracked like any signal for energy purposes, but with no descriptor:
  // noise is never a lock candidate, only interference. It can corrupt
  // the frame currently locked and raise carrier sense.
  signals_.emplace(sid, ActiveSignal{dbm_to_mw(rx_dbm), TxDescriptor{}, end_time});
  ++noise_bursts_heard_;
  update_lock_sinr();
  update_cca();
  ADHOC_LOG(kTrace, sim_.now(), "phy",
            "radio " << id_ << " noise start, rx=" << rx_dbm << " dBm");
}

void Radio::set_enabled(bool on) {
  if (on == enabled_) return;
  enabled_ = on;
  if (!on) {
    // Going down: drop the lock and all tracked energy instantly. An
    // in-flight own transmission is truncated locally (its already-
    // scheduled energy at the receivers completes — the wavefront has
    // left the antenna; the documented crash approximation).
    lock_.reset();
    signals_.clear();
    if (tx_until_ > sim_.now()) tx_until_ = sim_.now();
  }
  // Off -> CCA busy edge freezes the MAC; on -> the idle edge (no
  // signals are tracked yet) lets it resume access deterministically.
  update_cca();
}

void Radio::update_lock_sinr() {
  if (!lock_.has_value() || lock_->corrupted) return;
  const double sinr_db =
      mw_to_dbm(lock_->power_mw) - mw_to_dbm(interference_mw(lock_->sid));
  // The whole frame must clear the payload rate's threshold; the PLCP
  // portion only the 1 Mbps threshold. We conservatively apply the
  // payload threshold when the payload is decodable, else the PLCP one.
  const Rate gate_rate = lock_->payload_decodable ? lock_->desc.rate : Rate::kR1;
  if (sinr_db < params_.sinr_threshold(gate_rate)) {
    lock_->corrupted = true;
    if (trace_ != nullptr) {
      trace_->instant(sim_.now(), obs::Layer::kPhy, id_, obs::EventKind::kPhyCollision,
                      mw_to_dbm(lock_->power_mw), sinr_db);
    }
  }
}

void Radio::signal_end(SignalId sid) {
  const bool was_locked = lock_.has_value() && lock_->sid == sid;
  if (was_locked) {
    const bool ok = lock_->payload_decodable && !lock_->corrupted;
    auto payload = lock_->desc.payload;
    const Rate rate = lock_->desc.rate;
    const double rx_dbm = mw_to_dbm(lock_->power_mw);
    lock_.reset();
    if (ok) {
      ++frames_decoded_;
      if (trace_ != nullptr) {
        trace_->instant(sim_.now(), obs::Layer::kPhy, id_, obs::EventKind::kPhyRxOk,
                        rate_mbps(rate), rx_dbm);
      }
      if (listener_ != nullptr) listener_->on_rx_ok(std::move(payload), rate, rx_dbm);
    } else {
      ++frames_errored_;
      if (trace_ != nullptr) {
        trace_->instant(sim_.now(), obs::Layer::kPhy, id_, obs::EventKind::kPhyRxError,
                        rate_mbps(rate), rx_dbm);
      }
      if (listener_ != nullptr) listener_->on_rx_error();
    }
  }
  signals_.erase(sid);
  if (!was_locked) update_lock_sinr();
  update_cca();
}

}  // namespace adhoc::phy
