#include "phy/mobility.hpp"

#include <algorithm>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace adhoc::phy {

LinearMobility::LinearMobility(Position start, double vx_mps, double vy_mps, sim::Time t0,
                               sim::Time stop_at)
    : start_(start), vx_(vx_mps), vy_(vy_mps), t0_(t0), stop_at_(stop_at) {}

Position LinearMobility::position_at(sim::Time t) const {
  if (t < t0_) return start_;
  const sim::Time effective = std::min(t, stop_at_);
  const double dt = (effective - t0_).to_sec();
  return Position{start_.x + vx_ * dt, start_.y + vy_ * dt};
}

RandomWaypointMobility::RandomWaypointMobility(Position start, Params params, sim::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.width_m <= 0 || params_.height_m <= 0 ||
      params_.min_speed_mps <= 0 || params_.max_speed_mps < params_.min_speed_mps) {
    throw std::invalid_argument("RandomWaypointMobility: bad params");
  }
  legs_.push_back(Leg{sim::Time::zero(), sim::Time::zero(), start, start});
}

void RandomWaypointMobility::extend_to(sim::Time t) const {
  while (legs_.back().arrive + params_.pause < t) {
    const Leg& last = legs_.back();
    Leg next;
    next.from = last.to;
    next.to = Position{rng_.uniform(0.0, params_.width_m), rng_.uniform(0.0, params_.height_m)};
    next.depart = last.arrive + params_.pause;
    const double dist = distance(next.from, next.to);
    const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
    next.arrive = next.depart + sim::Time::from_sec(dist / speed);
    legs_.push_back(next);
  }
}

Position RandomWaypointMobility::position_at(sim::Time t) const {
  extend_to(t);
  // Find the leg containing t (walk back from the end; queries are
  // usually near the frontier).
  for (auto it = legs_.rbegin(); it != legs_.rend(); ++it) {
    if (t >= it->depart) {
      if (t >= it->arrive) return it->to;  // pausing at the waypoint
      const double span = (it->arrive - it->depart).to_sec();
      if (span <= 0.0) return it->to;
      const double f = (t - it->depart).to_sec() / span;
      return Position{it->from.x + (it->to.x - it->from.x) * f,
                      it->from.y + (it->to.y - it->from.y) * f};
    }
  }
  return legs_.front().from;
}

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) throw std::invalid_argument("WaypointMobility: empty path");
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].at < waypoints_[i - 1].at) {
      throw std::invalid_argument("WaypointMobility: waypoints not sorted by time");
    }
    const double span_s = (waypoints_[i].at - waypoints_[i - 1].at).to_sec();
    const double d = distance(waypoints_[i - 1].pos, waypoints_[i].pos);
    if (span_s > 0.0) {
      max_speed_mps_ = std::max(max_speed_mps_, d / span_s);
    } else if (d > 0.0) {
      // Coincident-time waypoints teleport: no finite speed bound.
      max_speed_mps_ = std::numeric_limits<double>::infinity();
    }
  }
}

GaussMarkovMobility::GaussMarkovMobility(Position start, Params params, sim::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.width_m <= 0 || params_.height_m <= 0 || params_.mean_speed_mps < 0 ||
      params_.max_speed_mps < params_.mean_speed_mps || params_.max_speed_mps <= 0 ||
      params_.alpha < 0 || params_.alpha >= 1 || params_.sigma_speed_mps < 0 ||
      params_.sigma_direction_rad < 0 || params_.update <= sim::Time::zero() ||
      params_.edge_margin_m < 0) {
    throw std::invalid_argument("GaussMarkovMobility: bad params");
  }
  Step first;
  first.at = sim::Time::zero();
  first.pos = start;
  first.speed_mps = std::min(params_.mean_speed_mps, params_.max_speed_mps);
  first.direction_rad = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  steps_.push_back(first);
}

void GaussMarkovMobility::extend_to(sim::Time t) const {
  const double dt = params_.update.to_sec();
  const double noise_gain = std::sqrt(1.0 - params_.alpha * params_.alpha);
  while (steps_.back().at < t) {
    const Step& cur = steps_.back();
    Step next;
    next.at = cur.at + params_.update;
    // Advance along the current heading first; the OU update below
    // yields the heading for the *next* interval.
    next.pos = Position{cur.pos.x + cur.speed_mps * std::cos(cur.direction_rad) * dt,
                        cur.pos.y + cur.speed_mps * std::sin(cur.direction_rad) * dt};
    // Reflect off the field boundary (and fold the heading) so the
    // walker never leaves [0, width] x [0, height].
    double dir = cur.direction_rad;
    if (next.pos.x < 0.0) { next.pos.x = -next.pos.x; dir = std::numbers::pi - dir; }
    if (next.pos.x > params_.width_m) {
      next.pos.x = 2.0 * params_.width_m - next.pos.x;
      dir = std::numbers::pi - dir;
    }
    if (next.pos.y < 0.0) { next.pos.y = -next.pos.y; dir = -dir; }
    if (next.pos.y > params_.height_m) {
      next.pos.y = 2.0 * params_.height_m - next.pos.y;
      dir = -dir;
    }
    // Near an edge, pull the mean heading toward the field center so the
    // process does not hug the boundary (standard Gauss-Markov edge
    // treatment); elsewhere the mean heading is the current one.
    double mean_dir = dir;
    const bool near_edge = next.pos.x < params_.edge_margin_m ||
                           next.pos.x > params_.width_m - params_.edge_margin_m ||
                           next.pos.y < params_.edge_margin_m ||
                           next.pos.y > params_.height_m - params_.edge_margin_m;
    if (near_edge) {
      mean_dir = std::atan2(params_.height_m / 2.0 - next.pos.y,
                            params_.width_m / 2.0 - next.pos.x);
      // Blend from the nearest representative of dir so the (1 - alpha)
      // pull acts on the short way around the circle.
      while (dir - mean_dir > std::numbers::pi) dir -= 2.0 * std::numbers::pi;
      while (mean_dir - dir > std::numbers::pi) dir += 2.0 * std::numbers::pi;
    }
    next.speed_mps = params_.alpha * cur.speed_mps +
                     (1.0 - params_.alpha) * params_.mean_speed_mps +
                     noise_gain * params_.sigma_speed_mps * rng_.normal();
    next.speed_mps = std::clamp(next.speed_mps, 0.0, params_.max_speed_mps);
    next.direction_rad = params_.alpha * dir + (1.0 - params_.alpha) * mean_dir +
                         noise_gain * params_.sigma_direction_rad * rng_.normal();
    steps_.push_back(next);
  }
}

Position GaussMarkovMobility::position_at(sim::Time t) const {
  if (t <= sim::Time::zero()) return steps_.front().pos;
  extend_to(t);
  // The step containing t (walk back from the frontier, like the
  // random-waypoint model: queries cluster near the end).
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    if (t >= it->at) {
      const double dt = (t - it->at).to_sec();
      Position p{it->pos.x + it->speed_mps * std::cos(it->direction_rad) * dt,
                 it->pos.y + it->speed_mps * std::sin(it->direction_rad) * dt};
      // Mid-step reflection, consistent with the step generator.
      if (p.x < 0.0) p.x = -p.x;
      if (p.x > params_.width_m) p.x = 2.0 * params_.width_m - p.x;
      if (p.y < 0.0) p.y = -p.y;
      if (p.y > params_.height_m) p.y = 2.0 * params_.height_m - p.y;
      return p;
    }
  }
  return steps_.front().pos;
}

Position WaypointMobility::position_at(sim::Time t) const {
  if (t <= waypoints_.front().at) return waypoints_.front().pos;
  if (t >= waypoints_.back().at) return waypoints_.back().pos;
  // Find the segment containing t.
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const auto& a = waypoints_[i - 1];
    const auto& b = waypoints_[i];
    if (t <= b.at) {
      const double span = (b.at - a.at).to_sec();
      if (span <= 0.0) return b.pos;
      const double f = (t - a.at).to_sec() / span;
      return Position{a.pos.x + (b.pos.x - a.pos.x) * f, a.pos.y + (b.pos.y - a.pos.y) * f};
    }
  }
  return waypoints_.back().pos;
}

}  // namespace adhoc::phy
