#include "phy/mobility.hpp"

#include <algorithm>
#include <stdexcept>

namespace adhoc::phy {

LinearMobility::LinearMobility(Position start, double vx_mps, double vy_mps, sim::Time t0,
                               sim::Time stop_at)
    : start_(start), vx_(vx_mps), vy_(vy_mps), t0_(t0), stop_at_(stop_at) {}

Position LinearMobility::position_at(sim::Time t) const {
  if (t < t0_) return start_;
  const sim::Time effective = std::min(t, stop_at_);
  const double dt = (effective - t0_).to_sec();
  return Position{start_.x + vx_ * dt, start_.y + vy_ * dt};
}

RandomWaypointMobility::RandomWaypointMobility(Position start, Params params, sim::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.width_m <= 0 || params_.height_m <= 0 ||
      params_.min_speed_mps <= 0 || params_.max_speed_mps < params_.min_speed_mps) {
    throw std::invalid_argument("RandomWaypointMobility: bad params");
  }
  legs_.push_back(Leg{sim::Time::zero(), sim::Time::zero(), start, start});
}

void RandomWaypointMobility::extend_to(sim::Time t) const {
  while (legs_.back().arrive + params_.pause < t) {
    const Leg& last = legs_.back();
    Leg next;
    next.from = last.to;
    next.to = Position{rng_.uniform(0.0, params_.width_m), rng_.uniform(0.0, params_.height_m)};
    next.depart = last.arrive + params_.pause;
    const double dist = distance(next.from, next.to);
    const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
    next.arrive = next.depart + sim::Time::from_sec(dist / speed);
    legs_.push_back(next);
  }
}

Position RandomWaypointMobility::position_at(sim::Time t) const {
  extend_to(t);
  // Find the leg containing t (walk back from the end; queries are
  // usually near the frontier).
  for (auto it = legs_.rbegin(); it != legs_.rend(); ++it) {
    if (t >= it->depart) {
      if (t >= it->arrive) return it->to;  // pausing at the waypoint
      const double span = (it->arrive - it->depart).to_sec();
      if (span <= 0.0) return it->to;
      const double f = (t - it->depart).to_sec() / span;
      return Position{it->from.x + (it->to.x - it->from.x) * f,
                      it->from.y + (it->to.y - it->from.y) * f};
    }
  }
  return legs_.front().from;
}

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) throw std::invalid_argument("WaypointMobility: empty path");
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].at < waypoints_[i - 1].at) {
      throw std::invalid_argument("WaypointMobility: waypoints not sorted by time");
    }
  }
}

Position WaypointMobility::position_at(sim::Time t) const {
  if (t <= waypoints_.front().at) return waypoints_.front().pos;
  if (t >= waypoints_.back().at) return waypoints_.back().pos;
  // Find the segment containing t.
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const auto& a = waypoints_[i - 1];
    const auto& b = waypoints_[i];
    if (t <= b.at) {
      const double span = (b.at - a.at).to_sec();
      if (span <= 0.0) return b.pos;
      const double f = (t - a.at).to_sec() / span;
      return Position{a.pos.x + (b.pos.x - a.pos.x) * f, a.pos.y + (b.pos.y - a.pos.y) * f};
    }
  }
  return waypoints_.back().pos;
}

}  // namespace adhoc::phy
