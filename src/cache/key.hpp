#pragma once
// Content-addressed run keys.
//
// A RunKey names the complete input of one simulation run: the scenario
// (grid name), the resolved grid-point parameters, the seed, the
// experiment-config knobs that change results (warmup/measure windows,
// observability level, scenario extras like the fig3 probe count), the
// fault-plan timeline, and the code-version stamp of the binary that
// would execute it. Runs are byte-stable and seed-addressed (PR 5), so
// two RunKeys with equal canonical serializations are guaranteed to
// produce byte-identical run records — the soundness argument for
// memoizing results under the key's hash (result_cache.hpp).
//
// Canonicalization rules:
//   * params and extras sort by name — field order never leaks into the
//     key, so permuted-but-equal specs collapse (KeyTest verifies);
//   * doubles serialize through obs::json_number (locale-free, shortest
//     round-trip) — the same formatter every byte-stable artifact uses;
//   * the fault plan contributes FaultPlan::canonical_text().

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"

namespace adhoc::cache {

struct RunKey {
  std::string scenario;  ///< grid / experiment family name, e.g. "fig2"
  std::vector<std::pair<std::string, double>> params;  ///< grid-point axes
  std::uint64_t seed = 1;
  /// Named config knobs beyond the grid point (warmup_ns, measure_ns,
  /// obs level, probes...). Doubles cover every knob the experiment
  /// configs expose; integral knobs round-trip exactly below 2^53.
  std::vector<std::pair<std::string, double>> extras;
  std::string fault_plan;   ///< FaultPlan::canonical_text()
  std::string code_version; ///< cache::code_version() or injected stamp

  /// The canonical serialization the hash covers. Deterministic across
  /// field-order permutations of params/extras and across processes.
  [[nodiscard]] std::string canonical() const;

  /// 128-bit content hash of canonical() as 32 lowercase hex chars —
  /// the cache's on-disk entry name.
  [[nodiscard]] std::string hash() const;
};

/// FNV-1a 64-bit over `data` starting from `basis` (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a64(const std::string& data, std::uint64_t basis);

}  // namespace adhoc::cache
