#pragma once
// Build/code-version stamp.
//
// One string identifies the code that produced a result: the project
// version plus the git revision captured at CMake configure time
// (ADHOC_BUILD_ID, see src/cache/CMakeLists.txt). The stamp is the
// cache's invalidation unit — ResultCache keys every entry under it, so
// results computed by a different build can never be served as hits —
// and the `adhocsim --version` / startup-log identity.

#include <string>

namespace adhoc::cache {

/// The compiled-in stamp, e.g. "1.0.0+d69a6ab" ("1.0.0+nogit" when the
/// source tree was configured outside a git checkout). Stable for the
/// lifetime of a binary; changes whenever the tree is reconfigured at a
/// different revision.
[[nodiscard]] const std::string& code_version();

}  // namespace adhoc::cache
