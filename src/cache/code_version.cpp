#include "cache/code_version.hpp"

namespace adhoc::cache {

// ADHOC_BUILD_ID is injected per-TU by src/cache/CMakeLists.txt from
// `git rev-parse --short HEAD` at configure time; the fallback keeps
// non-CMake consumers (header hygiene, IDE parses) compiling.
#ifndef ADHOC_BUILD_ID
#define ADHOC_BUILD_ID "dev+nogit"
#endif

const std::string& code_version() {
  static const std::string stamp = ADHOC_BUILD_ID;
  return stamp;
}

}  // namespace adhoc::cache
