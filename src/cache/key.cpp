#include "cache/key.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace adhoc::cache {

namespace {

void append_sorted(std::string& out, const char* label,
                   const std::vector<std::pair<std::string, double>>& fields) {
  std::vector<std::pair<std::string, double>> sorted = fields;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out += label;
  out += '{';
  for (const auto& [name, value] : sorted) {
    out += name;
    out += '=';
    out += obs::json_number(value);
    out += ';';
  }
  out += "}\n";
}

}  // namespace

std::string RunKey::canonical() const {
  // Length-prefixed free-text sections keep the serialization
  // injective: no scenario/fault-plan byte sequence can masquerade as
  // another section's content.
  std::string out;
  out += "scenario[" + std::to_string(scenario.size()) + "]=" + scenario + "\n";
  append_sorted(out, "params", params);
  out += "seed=" + std::to_string(seed) + "\n";
  append_sorted(out, "extras", extras);
  out += "faults[" + std::to_string(fault_plan.size()) + "]=" + fault_plan + "\n";
  out += "code[" + std::to_string(code_version.size()) + "]=" + code_version + "\n";
  return out;
}

std::uint64_t fnv1a64(const std::string& data, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string RunKey::hash() const {
  const std::string text = canonical();
  // Two independent FNV-1a streams (the standard offset basis and a
  // re-hashed basis) give a 128-bit name; collisions across a cache of
  // millions of entries are then negligible for this workload.
  const std::uint64_t lo = fnv1a64(text, 0xcbf29ce484222325ULL);
  const std::uint64_t hi = fnv1a64(text, fnv1a64("adhoc-cache-hi", 0xcbf29ce484222325ULL));
  static const char* digits = "0123456789abcdef";
  std::string hex(32, '0');
  for (int i = 0; i < 16; ++i) {
    hex[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xF];
    hex[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xF];
  }
  return hex;
}

}  // namespace adhoc::cache
