#include "cache/result_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cache/code_version.hpp"
#include "obs/metrics.hpp"

namespace adhoc::cache {

namespace fs = std::filesystem;

namespace {

/// Version stamps become directory names; keep them portable.
std::string sanitize_dir_name(const std::string& version) {
  std::string out = version.empty() ? "unversioned" : version;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '-' || c == '_' || c == '+';
    if (!ok) c = '_';
  }
  return out;
}

[[noreturn]] void io_error(const std::string& what, const fs::path& path) {
  throw std::runtime_error("ResultCache: " + what + ": " + path.string());
}

}  // namespace

ResultCache::ResultCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  // No concurrent access is possible during construction, but holding
  // the lock keeps the guarded-member writes below (and the
  // evict_to_bounds() REQUIRES contract) visible to the thread-safety
  // analysis without an escape hatch.
  const conc::MutexLock lock{mutex_};
  if (cfg_.root.empty()) throw std::runtime_error("ResultCache: empty root directory");
  if (cfg_.version.empty()) cfg_.version = code_version();
  const fs::path root{cfg_.root};
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec || !fs::is_directory(root)) io_error("cannot create root", root);

  const std::string version_name = sanitize_dir_name(cfg_.version);
  version_dir_ = (root / version_name).string();

  // Versioned invalidation: any sibling version directory belongs to a
  // different build — unreachable through current keys — so reclaim it.
  // Names collected and sorted first: directory_iterator order is
  // filesystem-specific, and the invalidated counter should not be.
  std::vector<fs::path> stale;
  for (const auto& it : fs::directory_iterator(root, ec)) {
    if (it.is_directory() && it.path().filename().string() != version_name) {
      stale.push_back(it.path());
    }
  }
  std::sort(stale.begin(), stale.end());
  for (const fs::path& dir : stale) {
    for (const auto& it : fs::recursive_directory_iterator(dir, ec)) {
      if (it.is_regular_file()) ++counters_.invalidated;
    }
    fs::remove_all(dir, ec);
  }

  fs::create_directories(version_dir_, ec);
  if (ec || !fs::is_directory(version_dir_)) io_error("cannot create version dir", version_dir_);

  // Index surviving entries. Sorted-hash seeding makes the initial LRU
  // order (and therefore the first evictions) deterministic across
  // processes and filesystems.
  std::vector<std::pair<std::string, std::uint64_t>> found;
  for (const auto& shard : fs::directory_iterator(version_dir_, ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      if (!file.is_regular_file() || file.path().extension() != ".json") continue;
      found.emplace_back(file.path().stem().string(),
                         static_cast<std::uint64_t>(file.file_size()));
    }
  }
  std::sort(found.begin(), found.end());
  for (const auto& [hash, size] : found) {
    entries_[hash] = Entry{size, ++seq_};
    bytes_ += size;
  }
  evict_to_bounds();
}

std::string ResultCache::entry_path(const std::string& hash) const {
  return (fs::path{version_dir_} / hash.substr(0, 2) / (hash + ".json")).string();
}

std::optional<std::string> ResultCache::lookup(const RunKey& key) {
  const std::string hash = key.hash();
  const conc::MutexLock lock{mutex_};
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  std::ifstream in{entry_path(hash), std::ios::binary};
  if (!in) {
    // Entry vanished under us (external cleanup): treat as a miss and
    // forget it.
    bytes_ -= it->second.size;
    entries_.erase(it);
    ++counters_.misses;
    return std::nullopt;
  }
  std::ostringstream payload;
  payload << in.rdbuf();
  it->second.last_use = ++seq_;
  ++counters_.hits;
  return payload.str();
}

void ResultCache::store(const RunKey& key, const std::string& payload) {
  const std::string hash = key.hash();
  const conc::MutexLock lock{mutex_};
  const fs::path path{entry_path(hash)};
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) io_error("cannot write entry", path);
  out << payload;
  out.close();
  if (!out) io_error("cannot write entry", path);

  const auto it = entries_.find(hash);
  if (it != entries_.end()) bytes_ -= it->second.size;
  entries_[hash] = Entry{payload.size(), ++seq_};
  bytes_ += payload.size();
  ++counters_.stores;
  evict_to_bounds();
}

void ResultCache::evict_to_bounds() {
  // Caller holds mutex_.
  const auto over = [&] {
    return (cfg_.max_entries != 0 && entries_.size() > cfg_.max_entries) ||
           (cfg_.max_bytes != 0 && bytes_ > cfg_.max_bytes);
  };
  while (over() && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      // Oldest last_use wins; the map's sorted-hash order breaks ties.
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    std::error_code ec;
    fs::remove(entry_path(victim->first), ec);
    bytes_ -= victim->second.size;
    entries_.erase(victim);
    ++counters_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  const conc::MutexLock lock{mutex_};
  Stats s = counters_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

void ResultCache::attach_metrics(obs::MetricsRegistry& registry) {
  const auto probe = [this](auto member) {
    return [this, member]() { return static_cast<double>(stats().*member); };
  };
  registry.add_probe("cache", "hits", probe(&Stats::hits));
  registry.add_probe("cache", "misses", probe(&Stats::misses));
  registry.add_probe("cache", "stores", probe(&Stats::stores));
  registry.add_probe("cache", "evictions", probe(&Stats::evictions));
  registry.add_probe("cache", "invalidated", probe(&Stats::invalidated));
  registry.add_probe("cache", "entries", probe(&Stats::entries));
  registry.add_probe("cache", "bytes", probe(&Stats::bytes));
}

}  // namespace adhoc::cache
