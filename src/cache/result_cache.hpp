#pragma once
// Content-addressed, on-disk result cache.
//
// One entry per RunKey hash, holding the byte-stable run-record payload
// (serve::record_json bytes) that a cold run of that key produced.
// Because run records are byte-stable and the key covers every input
// including the code-version stamp, serving a stored payload is
// indistinguishable from re-running the simulation — the serve layer's
// scorecard comparator verifies that mechanically (serve_smoke).
//
// On-disk layout (all names deterministic):
//
//   <root>/<version>/<hh>/<hash>.json
//
// where <version> is the sanitized code-version stamp, <hh> the first
// two hex chars of the 128-bit key hash (fan-out, so no directory holds
// millions of files) and <hash>.json the payload bytes verbatim.
//
// Invalidation: opening a cache removes every version directory other
// than its own — results from a different build are unreachable by
// construction (the hash covers the stamp) and reclaiming them eagerly
// keeps the size bound meaningful.
//
// Eviction: LRU over (lookup | store) touches, bounded by max_entries
// and/or max_bytes. Pre-existing entries found at open are seeded into
// the LRU in sorted-hash order (deterministic across processes), oldest
// first.
//
// Counters (hits/misses/stores/evictions/invalidated) surface through
// obs::MetricsRegistry probes under component "cache".
//
// Thread-safe: every public method locks; concurrent serve clients may
// hit one cache instance. Two processes sharing a root are not
// coordinated (last-write-wins on identical bytes is harmless; the
// serve daemon owns its root exclusively).

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cache/key.hpp"
#include "concurrency/mutex.hpp"

namespace adhoc::obs {
class MetricsRegistry;
}

namespace adhoc::cache {

struct CacheConfig {
  std::string root;     ///< cache directory (created if absent)
  std::string version;  ///< code stamp; empty = cache::code_version()
  std::size_t max_entries = 0;  ///< LRU bound on entry count; 0 = unbounded
  std::uint64_t max_bytes = 0;  ///< LRU bound on payload bytes; 0 = unbounded
};

class ResultCache {
 public:
  /// Opens (creating if needed) the cache at cfg.root, drops stale
  /// version directories, indexes surviving entries. Throws
  /// std::runtime_error on I/O failure naming the path.
  explicit ResultCache(CacheConfig cfg);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Payload bytes for `key`, or nullopt on a miss. A hit refreshes the
  /// entry's LRU position.
  [[nodiscard]] std::optional<std::string> lookup(const RunKey& key) EXCLUDES(mutex_);

  /// Store `payload` under `key` (idempotent: re-storing refreshes LRU
  /// and rewrites identical bytes). May evict least-recently-used
  /// entries to honour the size bounds.
  void store(const RunKey& key, const std::string& payload) EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;  ///< entries dropped by version turnover
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

  [[nodiscard]] const std::string& version() const { return cfg_.version; }
  [[nodiscard]] const std::string& root() const { return cfg_.root; }

  /// Register lazy probes under component "cache" (hits, misses,
  /// stores, evictions, invalidated, entries, bytes). The registry must
  /// not outlive this cache.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t last_use = 0;  ///< LRU sequence number
  };

  [[nodiscard]] std::string entry_path(const std::string& hash) const;
  void evict_to_bounds() REQUIRES(mutex_);

  CacheConfig cfg_;          // immutable after the constructor
  std::string version_dir_;  // immutable after the constructor
  // kResultCache ranks above kServiceMetrics: snapshot probes evaluate
  // under the ServiceMetrics lock and call stats() here.
  mutable conc::Mutex mutex_{conc::LockRank::kResultCache, "cache.result_cache"};
  // std::map: eviction scans must break last_use ties deterministically
  // (lexicographically smallest hash first), and stats snapshots feed
  // telemetry.
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::uint64_t bytes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t seq_ GUARDED_BY(mutex_) = 0;
  Stats counters_ GUARDED_BY(mutex_);
};

}  // namespace adhoc::cache
