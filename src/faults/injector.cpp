#include "faults/injector.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace adhoc::faults {

FaultInjector::FaultInjector(FaultTargets targets, FaultPlan plan)
    : targets_(std::move(targets)), plan_(std::move(plan)) {
  if (targets_.sim == nullptr || targets_.medium == nullptr) {
    throw std::invalid_argument("FaultInjector: simulator and medium are required");
  }
  plan_.validate(targets_.radios.size());
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kDayOffset && targets_.shadowing == nullptr) {
      throw std::logic_error(
          "FaultInjector: dayoffset event needs a shadowed channel "
          "(the scenario runs a deterministic propagation model)");
    }
  }
  if (targets_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *targets_.metrics;
    reg.add_probe("faults", "events_scheduled",
                  [this] { return static_cast<double>(acct_.events_scheduled); });
    reg.add_probe("faults", "interference_bursts",
                  [this] { return static_cast<double>(accounting().interference_bursts); });
    reg.add_probe("faults", "interference_airtime_us",
                  [this] { return accounting().interference_airtime.to_us(); });
    reg.add_probe("faults", "node_off", [this] { return static_cast<double>(acct_.node_off); });
    reg.add_probe("faults", "node_on", [this] { return static_cast<double>(acct_.node_on); });
    reg.add_probe("faults", "tx_power_steps",
                  [this] { return static_cast<double>(acct_.tx_power_steps); });
    reg.add_probe("faults", "day_offset_steps",
                  [this] { return static_cast<double>(acct_.day_offset_steps); });
    reg.add_probe("faults", "blackouts", [this] { return static_cast<double>(acct_.blackouts); });
  }
}

void FaultInjector::trace_instant(obs::EventKind kind, std::uint32_t track, double a, double b) {
  if (targets_.trace != nullptr) {
    targets_.trace->instant(targets_.sim->now(), obs::Layer::kFault, track, kind, a, b);
  }
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: arm() called twice");
  armed_ = true;
  sim::Simulator& sim = *targets_.sim;
  for (const FaultEvent& e : plan_.events()) {
    ++acct_.events_scheduled;
    switch (e.kind) {
      case FaultKind::kInterference: {
        InterferenceSource::Config c;
        c.position = e.position;
        c.power_dbm = e.value;
        c.window_start = e.at;
        c.window_end = e.until;
        c.period = e.period;
        c.duty = e.duty;
        c.jitter = e.jitter;
        const auto ordinal = static_cast<std::uint32_t>(emitters_.size());
        emitters_.push_back(std::make_unique<InterferenceSource>(
            sim, *targets_.medium, kEmitterIdBase + ordinal, ordinal, c,
            sim.rng_stream("faults").substream(ordinal), targets_.trace));
        emitters_.back()->arm();
        break;
      }
      case FaultKind::kNodeOff:
        sim.at(e.at, [this, node = e.node] {
          targets_.radios[node]->set_enabled(false);
          ++acct_.node_off;
          trace_instant(obs::EventKind::kFaultNodeOff, node, static_cast<double>(node), 0.0);
          ADHOC_LOG(kDebug, targets_.sim->now(), "faults", "node " << node << " powered off");
        }, "fault.node_off");
        break;
      case FaultKind::kNodeOn:
        sim.at(e.at, [this, node = e.node] {
          targets_.radios[node]->set_enabled(true);
          ++acct_.node_on;
          trace_instant(obs::EventKind::kFaultNodeOn, node, static_cast<double>(node), 0.0);
          ADHOC_LOG(kDebug, targets_.sim->now(), "faults", "node " << node << " powered on");
        }, "fault.node_on");
        break;
      case FaultKind::kTxPower:
        sim.at(e.at, [this, node = e.node, dbm = e.value] {
          const double prev = targets_.radios[node]->params().tx_power_dbm;
          targets_.radios[node]->set_tx_power_dbm(dbm);
          ++acct_.tx_power_steps;
          trace_instant(obs::EventKind::kFaultTxPower, node, dbm, prev);
        }, "fault.tx_power");
        break;
      case FaultKind::kDayOffset:
        sim.at(e.at, [this, db = e.value] {
          const double prev = targets_.shadowing->params().day_offset_db;
          targets_.shadowing->set_day_offset_db(db);
          ++acct_.day_offset_steps;
          trace_instant(obs::EventKind::kFaultDayOffset, 0, db, prev);
        }, "fault.day_offset");
        break;
      case FaultKind::kLinkBlackout: {
        const auto a = e.node;
        const auto b = e.peer;
        const bool bidi = e.bidirectional;
        sim.at(e.at, [this, a, b, bidi] {
          targets_.medium->set_link_blocked(a, b, true);
          if (bidi) targets_.medium->set_link_blocked(b, a, true);
          ++acct_.blackouts;
          trace_instant(obs::EventKind::kFaultBlackoutStart, a, static_cast<double>(a),
                        static_cast<double>(b));
        }, "fault.blackout_on");
        sim.at(e.until, [this, a, b, bidi] {
          targets_.medium->set_link_blocked(a, b, false);
          if (bidi) targets_.medium->set_link_blocked(b, a, false);
          trace_instant(obs::EventKind::kFaultBlackoutEnd, a, static_cast<double>(a),
                        static_cast<double>(b));
        }, "fault.blackout_off");
        break;
      }
    }
  }
}

FaultAccounting FaultInjector::accounting() const {
  FaultAccounting out = acct_;
  for (const auto& emitter : emitters_) {
    out.interference_bursts += emitter->stats().bursts;
    out.interference_airtime += emitter->stats().airtime;
  }
  return out;
}

}  // namespace adhoc::faults
