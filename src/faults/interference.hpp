#pragma once
// Non-802.11 energy emitter.
//
// Models the external disturbances the paper's testbed saw — a microwave
// oven, a person crossing the line of sight — as a point source radiating
// undecodable energy into phy::Medium. Receivers experience it through
// the medium's generalized emitter interface (Medium::begin_interference):
// the energy raises carrier sense and degrades the SINR of concurrent
// receptions, but can never be locked onto or decoded.
//
// All burst times are precomputed at arm() time from a dedicated RNG
// substream, so an interference source never perturbs the draw sequences
// of existing components and duty-cycle jitter stays deterministic per
// seed.

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "phy/medium.hpp"
#include "phy/units.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace adhoc::faults {

/// Counters shared by the injector's end-of-run accounting.
struct InterferenceStats {
  std::uint64_t bursts = 0;
  sim::Time airtime = sim::Time::zero();
};

class InterferenceSource {
 public:
  struct Config {
    phy::Position position{};
    double power_dbm = 15.0;
    sim::Time window_start = sim::Time::zero();
    sim::Time window_end = sim::Time::zero();
    /// Zero: one continuous burst over the window. Positive: one burst of
    /// `duty * period` per period, offset by up to `jitter` of the
    /// period's idle slack (bursts never overlap).
    sim::Time period = sim::Time::zero();
    double duty = 1.0;
    double jitter = 0.0;
  };

  /// `emitter_id` keys the directed shadowing processes toward each radio
  /// and must not collide with radio ids (see kEmitterIdBase). `ordinal`
  /// is the trace track. The source draws only from `rng`.
  InterferenceSource(sim::Simulator& simulator, phy::Medium& medium, std::uint32_t emitter_id,
                     std::uint32_t ordinal, Config config, sim::Rng rng,
                     obs::TraceSink* trace = nullptr);

  InterferenceSource(const InterferenceSource&) = delete;
  InterferenceSource& operator=(const InterferenceSource&) = delete;

  /// Precompute and schedule every burst. Call once, before the run.
  void arm();

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const InterferenceStats& stats() const { return stats_; }

 private:
  void schedule_burst(sim::Time at, sim::Time dur);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  std::uint32_t emitter_id_;
  std::uint32_t ordinal_;
  Config cfg_;
  sim::Rng rng_;
  obs::TraceSink* trace_;
  InterferenceStats stats_;
  bool armed_ = false;
};

/// Emitter ids start well above any plausible radio id so the per-link
/// shadowing streams of emitters and stations never collide.
inline constexpr std::uint32_t kEmitterIdBase = 1u << 16;

}  // namespace adhoc::faults
