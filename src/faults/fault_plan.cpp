#include "faults/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace adhoc::faults {

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kInterference: return "jam";
    case FaultKind::kNodeOff: return "off";
    case FaultKind::kNodeOn: return "on";
    case FaultKind::kTxPower: return "txpower";
    case FaultKind::kDayOffset: return "dayoffset";
    case FaultKind::kLinkBlackout: return "blackout";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::jam(sim::Time at, sim::Time dur, phy::Position pos, double power_dbm,
                          sim::Time period, double duty, double jitter) {
  FaultEvent e;
  e.kind = FaultKind::kInterference;
  e.at = at;
  e.until = at + dur;
  e.position = pos;
  e.value = power_dbm;
  e.period = period;
  e.duty = duty;
  e.jitter = jitter;
  return add(e);
}

FaultPlan& FaultPlan::node_off(std::uint32_t node, sim::Time at) {
  FaultEvent e;
  e.kind = FaultKind::kNodeOff;
  e.node = node;
  e.at = at;
  return add(e);
}

FaultPlan& FaultPlan::node_on(std::uint32_t node, sim::Time at) {
  FaultEvent e;
  e.kind = FaultKind::kNodeOn;
  e.node = node;
  e.at = at;
  return add(e);
}

FaultPlan& FaultPlan::tx_power(std::uint32_t node, sim::Time at, double dbm) {
  FaultEvent e;
  e.kind = FaultKind::kTxPower;
  e.node = node;
  e.at = at;
  e.value = dbm;
  return add(e);
}

FaultPlan& FaultPlan::day_offset(sim::Time at, double db) {
  FaultEvent e;
  e.kind = FaultKind::kDayOffset;
  e.at = at;
  e.value = db;
  return add(e);
}

FaultPlan& FaultPlan::blackout(std::uint32_t a, std::uint32_t b, sim::Time start, sim::Time end,
                               bool bidirectional) {
  FaultEvent e;
  e.kind = FaultKind::kLinkBlackout;
  e.node = a;
  e.peer = b;
  e.at = start;
  e.until = end;
  e.bidirectional = bidirectional;
  return add(e);
}

namespace {

[[noreturn]] void invalid(const std::string& msg) {
  throw std::invalid_argument("fault plan: " + msg);
}

void check_node(std::uint32_t node, std::size_t node_count, const FaultEvent& e) {
  if (node >= node_count) {
    invalid(std::string(fault_kind_name(e.kind)) + ": node " + std::to_string(node) +
            " out of range (scenario has " + std::to_string(node_count) + " nodes)");
  }
}

}  // namespace

void FaultPlan::validate(std::size_t node_count) const {
  // Per-node power timeline: (time, is_off) entries must alternate
  // starting with off — stations boot powered on.
  std::map<std::uint32_t, std::vector<std::pair<sim::Time, bool>>> power;
  // Per-directed-link blackout windows, for the overlap check.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::pair<sim::Time, sim::Time>>>
      blackouts;

  for (const FaultEvent& e : events_) {
    if (e.at < sim::Time::zero()) {
      invalid(std::string(fault_kind_name(e.kind)) + ": negative start time");
    }
    switch (e.kind) {
      case FaultKind::kInterference:
        if (e.until <= e.at) invalid("jam: duration must be positive");
        if (!(e.duty > 0.0 && e.duty <= 1.0)) invalid("jam: duty must be in (0, 1]");
        if (e.jitter < 0.0 || e.jitter > 1.0) invalid("jam: jitter must be in [0, 1]");
        if (e.period < sim::Time::zero()) invalid("jam: period must be >= 0");
        break;
      case FaultKind::kNodeOff:
        check_node(e.node, node_count, e);
        power[e.node].emplace_back(e.at, true);
        break;
      case FaultKind::kNodeOn:
        check_node(e.node, node_count, e);
        power[e.node].emplace_back(e.at, false);
        break;
      case FaultKind::kTxPower:
        check_node(e.node, node_count, e);
        break;
      case FaultKind::kDayOffset:
        break;
      case FaultKind::kLinkBlackout: {
        check_node(e.node, node_count, e);
        check_node(e.peer, node_count, e);
        if (e.node == e.peer) invalid("blackout: a and b must differ");
        if (e.until <= e.at) invalid("blackout: end must be after start");
        blackouts[{e.node, e.peer}].emplace_back(e.at, e.until);
        if (e.bidirectional) blackouts[{e.peer, e.node}].emplace_back(e.at, e.until);
        break;
      }
    }
  }

  for (auto& [node, timeline] : power) {
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });
    bool expect_off = true;  // stations start powered on
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (i > 0 && timeline[i].first == timeline[i - 1].first) {
        invalid("node " + std::to_string(node) + ": off/on events at the same instant");
      }
      if (timeline[i].second != expect_off) {
        invalid("node " + std::to_string(node) + ": off/on events must alternate starting "
                "with off (stations boot powered on)");
      }
      expect_off = !expect_off;
    }
  }

  for (auto& [link, windows] : blackouts) {
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      if (windows[i].first < windows[i - 1].second) {
        invalid("blackout: overlapping windows on link " + std::to_string(link.first) + "->" +
                std::to_string(link.second));
      }
    }
  }
}

std::string FaultPlan::canonical_text() const {
  // Every field serialises, used or not, so the text never depends on
  // which fields a kind happens to read — one unambiguous byte string
  // per timeline, fit for content hashing.
  std::string out;
  for (const FaultEvent& e : events_) {
    out += fault_kind_name(e.kind);
    out += " at=" + std::to_string(e.at.count_ns());
    out += " until=" + std::to_string(e.until.count_ns());
    out += " node=" + std::to_string(e.node);
    out += " peer=" + std::to_string(e.peer);
    out += " bidir=" + std::string(e.bidirectional ? "1" : "0");
    out += " value=" + obs::json_number(e.value);
    out += " x=" + obs::json_number(e.position.x);
    out += " y=" + obs::json_number(e.position.y);
    out += " period=" + std::to_string(e.period.count_ns());
    out += " duty=" + obs::json_number(e.duty);
    out += " jitter=" + obs::json_number(e.jitter);
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

struct Statement {
  std::string kind;
  std::map<std::string, std::string> kv;
  bool oneway = false;
  std::string text;  // original, for error messages
};

double parse_number(const Statement& st, const std::string& key) {
  const auto it = st.kv.find(key);
  if (it == st.kv.end()) invalid(st.kind + ": missing " + key + "= in '" + st.text + "'");
  std::size_t consumed = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != it->second.size()) {
    invalid(st.kind + ": " + key + " expects a number, got '" + it->second + "'");
  }
  return v;
}

double parse_number(const Statement& st, const std::string& key, double fallback) {
  return st.kv.contains(key) ? parse_number(st, key) : fallback;
}

std::uint32_t parse_node(const Statement& st, const std::string& key) {
  const double v = parse_number(st, key);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    invalid(st.kind + ": " + key + " expects a non-negative node index");
  }
  return static_cast<std::uint32_t>(v);
}

void check_keys(const Statement& st, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : st.kv) {
    if (std::find_if(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; }) == allowed.end()) {
      invalid(st.kind + ": unknown key '" + key + "' in '" + st.text + "'");
    }
  }
}

std::string trim(std::string s) {
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  return s;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), '\n', ';');
  std::istringstream stream{normalized};
  std::string raw;
  while (std::getline(stream, raw, ';')) {
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.erase(hash);
    raw = trim(raw);
    if (raw.empty()) continue;

    Statement st;
    st.text = raw;
    std::istringstream tokens{raw};
    tokens >> st.kind;
    std::string tok;
    while (tokens >> tok) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        if (tok == "oneway") {
          st.oneway = true;
          continue;
        }
        invalid(st.kind + ": expected key=value, got '" + tok + "'");
      }
      st.kv[tok.substr(0, eq)] = tok.substr(eq + 1);
    }

    if (st.kind == "jam") {
      check_keys(st, {"start", "dur", "x", "y", "power", "period", "duty", "jitter"});
      plan.jam(sim::Time::from_sec(parse_number(st, "start")),
               sim::Time::from_sec(parse_number(st, "dur")),
               {parse_number(st, "x"), parse_number(st, "y")}, parse_number(st, "power"),
               sim::Time::from_sec(parse_number(st, "period", 0.0)),
               parse_number(st, "duty", 1.0), parse_number(st, "jitter", 0.0));
    } else if (st.kind == "off") {
      check_keys(st, {"node", "at"});
      plan.node_off(parse_node(st, "node"), sim::Time::from_sec(parse_number(st, "at")));
    } else if (st.kind == "on") {
      check_keys(st, {"node", "at"});
      plan.node_on(parse_node(st, "node"), sim::Time::from_sec(parse_number(st, "at")));
    } else if (st.kind == "txpower") {
      check_keys(st, {"node", "at", "dbm"});
      plan.tx_power(parse_node(st, "node"), sim::Time::from_sec(parse_number(st, "at")),
                    parse_number(st, "dbm"));
    } else if (st.kind == "dayoffset") {
      check_keys(st, {"at", "db"});
      plan.day_offset(sim::Time::from_sec(parse_number(st, "at")), parse_number(st, "db"));
    } else if (st.kind == "blackout") {
      check_keys(st, {"a", "b", "start", "end"});
      plan.blackout(parse_node(st, "a"), parse_node(st, "b"),
                    sim::Time::from_sec(parse_number(st, "start")),
                    sim::Time::from_sec(parse_number(st, "end")), !st.oneway);
    } else {
      invalid("unknown event '" + st.kind + "' in '" + st.text + "'");
    }
  }
  return plan;
}

// ----------------------------------------------------------------- builtins

const std::vector<std::string>& builtin_plan_names() {
  static const std::vector<std::string> names{"none", "midrun-jam", "crash", "fig4-burst"};
  return names;
}

FaultPlan builtin_plan(const std::string& name) {
  if (name == "none") return {};
  if (name == "midrun-jam") {
    return parse_fault_plan("jam start=3 dur=2 x=50 y=10 power=15");
  }
  if (name == "crash") {
    return parse_fault_plan("off node=1 at=3; on node=1 at=6");
  }
  if (name == "fig4-burst") {
    // A person crossing the LOS mid-session plus a weather turn: the
    // within-session disturbance of Fig. 4 (bottom). See bench_fig4.
    return parse_fault_plan("jam start=2 dur=2 x=40 y=10 power=15; dayoffset at=3 db=-4");
  }
  invalid("unknown builtin plan '" + name + "'");
}

std::string fault_plan_grammar() {
  std::string names;
  for (const std::string& n : builtin_plan_names()) {
    if (!names.empty()) names += '|';
    names += n;
  }
  return "fault plan: builtin name (" + names +
         "), a file path, or an inline spec.\n"
         "grammar (events separated by ';' or newline, '#' comments):\n"
         "  jam start=<s> dur=<s> x=<m> y=<m> power=<dBm> [period=<s>] [duty=<0-1>] "
         "[jitter=<0-1>]\n"
         "  off node=<i> at=<s>\n"
         "  on node=<i> at=<s>\n"
         "  txpower node=<i> at=<s> dbm=<dBm>\n"
         "  dayoffset at=<s> db=<dB>\n"
         "  blackout a=<i> b=<i> start=<s> end=<s> [oneway]";
}

FaultPlan load_fault_plan(const std::string& arg) {
  const auto& names = builtin_plan_names();
  if (std::find(names.begin(), names.end(), arg) != names.end()) return builtin_plan(arg);
  try {
    if (std::ifstream file{arg}; file) {
      std::ostringstream content;
      content << file.rdbuf();
      return parse_fault_plan(content.str());
    }
    if (arg.find('=') != std::string::npos) return parse_fault_plan(arg);
    invalid("'" + arg + "' is not a builtin plan, a readable file, or an inline spec");
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) + "\n" + fault_plan_grammar());
  }
}

}  // namespace adhoc::faults
