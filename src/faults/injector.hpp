#pragma once
// FaultInjector: schedules a FaultPlan onto a running scenario.
//
// The injector owns the interference emitters, drives node/link/channel
// faults through the phy layer's fault hooks (Radio::set_enabled,
// Radio::set_tx_power_dbm, Medium::set_link_blocked,
// ShadowedPropagation::set_day_offset_db), publishes fault_* events into
// the PR 2 trace sink, and registers a "faults" metrics component with
// end-of-run accounting. It draws exclusively from the dedicated "faults"
// RNG stream, so an armed (or empty) plan never reshuffles the draws of
// existing components — the basis of the no-fault bit-identity guarantee.

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/interference.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/shadowing.hpp"
#include "sim/simulator.hpp"

namespace adhoc::faults {

/// Everything a plan can act on. `shadowing`, `trace` and `metrics` may
/// be null; scheduling a day-offset event without a shadowed channel is
/// reported as an error at construction.
struct FaultTargets {
  sim::Simulator* sim = nullptr;
  phy::Medium* medium = nullptr;
  std::vector<phy::Radio*> radios;
  phy::ShadowedPropagation* shadowing = nullptr;
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// End-of-run fault accounting (also exposed as "faults" metrics probes).
struct FaultAccounting {
  std::uint64_t events_scheduled = 0;
  std::uint64_t interference_bursts = 0;
  sim::Time interference_airtime = sim::Time::zero();
  std::uint64_t node_off = 0;
  std::uint64_t node_on = 0;
  std::uint64_t tx_power_steps = 0;
  std::uint64_t day_offset_steps = 0;
  std::uint64_t blackouts = 0;
};

class FaultInjector {
 public:
  /// Validates the plan against the target set; throws
  /// std::invalid_argument on an inconsistent plan and std::logic_error
  /// when a day-offset event targets a deterministic (non-shadowed)
  /// channel.
  FaultInjector(FaultTargets targets, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every event of the plan. Call once, before the run.
  void arm();

  /// Accounting so far; interference counters settle as bursts fire.
  [[nodiscard]] FaultAccounting accounting() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t emitter_count() const { return emitters_.size(); }
  [[nodiscard]] const InterferenceSource& emitter(std::size_t i) const { return *emitters_.at(i); }

 private:
  void trace_instant(obs::EventKind kind, std::uint32_t track, double a, double b);

  FaultTargets targets_;
  FaultPlan plan_;
  std::vector<std::unique_ptr<InterferenceSource>> emitters_;
  FaultAccounting acct_;
  bool armed_ = false;
};

}  // namespace adhoc::faults
