#include "faults/interference.hpp"

#include <algorithm>
#include <stdexcept>

namespace adhoc::faults {

InterferenceSource::InterferenceSource(sim::Simulator& simulator, phy::Medium& medium,
                                       std::uint32_t emitter_id, std::uint32_t ordinal,
                                       Config config, sim::Rng rng, obs::TraceSink* trace)
    : sim_(simulator),
      medium_(medium),
      emitter_id_(emitter_id),
      ordinal_(ordinal),
      cfg_(config),
      rng_(rng),
      trace_(trace) {
  if (cfg_.window_end <= cfg_.window_start) {
    throw std::invalid_argument("InterferenceSource: empty emission window");
  }
  if (!(cfg_.duty > 0.0 && cfg_.duty <= 1.0)) {
    throw std::invalid_argument("InterferenceSource: duty must be in (0, 1]");
  }
  if (cfg_.jitter < 0.0 || cfg_.jitter > 1.0) {
    throw std::invalid_argument("InterferenceSource: jitter must be in [0, 1]");
  }
}

void InterferenceSource::schedule_burst(sim::Time at, sim::Time dur) {
  sim_.at(at, [this, dur] {
    ++stats_.bursts;
    stats_.airtime += dur;
    if (trace_ != nullptr) {
      trace_->instant(sim_.now(), obs::Layer::kFault, ordinal_,
                      obs::EventKind::kFaultInterferenceStart, cfg_.power_dbm,
                      static_cast<double>(emitter_id_));
    }
    medium_.begin_interference(emitter_id_, cfg_.position, cfg_.power_dbm, dur);
  }, "fault.interference_on");
  sim_.at(at + dur, [this] {
    if (trace_ != nullptr) {
      trace_->instant(sim_.now(), obs::Layer::kFault, ordinal_,
                      obs::EventKind::kFaultInterferenceEnd, cfg_.power_dbm,
                      static_cast<double>(emitter_id_));
    }
  }, "fault.interference_off");
}

void InterferenceSource::arm() {
  if (armed_) throw std::logic_error("InterferenceSource: arm() called twice");
  armed_ = true;
  if (cfg_.period <= sim::Time::zero()) {
    schedule_burst(cfg_.window_start, cfg_.window_end - cfg_.window_start);
    return;
  }
  const sim::Time on = sim::Time::from_sec(cfg_.period.to_sec() * cfg_.duty);
  for (sim::Time t = cfg_.window_start; t < cfg_.window_end; t += cfg_.period) {
    // Jitter shifts each burst within its period's idle slack, so bursts
    // from one emitter can never overlap regardless of the draws.
    const sim::Time slack = cfg_.period - on;
    sim::Time offset = sim::Time::zero();
    if (cfg_.jitter > 0.0 && slack > sim::Time::zero()) {
      offset = sim::Time::from_sec(rng_.uniform(0.0, slack.to_sec() * cfg_.jitter));
    }
    const sim::Time start = t + offset;
    const sim::Time dur = std::min(on, cfg_.window_end - start);
    if (dur > sim::Time::zero()) schedule_burst(start, dur);
  }
}

}  // namespace adhoc::faults
