#pragma once
// Scripted fault timelines.
//
// A FaultPlan is a typed, validated list of disturbance events — the
// things the paper's testbed suffered implicitly (people crossing the
// line of sight, weather shifts between measurement days, stations
// rebooting) expressed as a reproducible experiment input. Plans are
// built programmatically (fluent builders), parsed from a small text
// grammar, or resolved from a named builtin; FaultInjector (injector.hpp)
// schedules them onto a simulator.
//
// Grammar (events separated by ';' or newline, '#' starts a comment):
//   jam start=<s> dur=<s> x=<m> y=<m> power=<dBm>
//       [period=<s>] [duty=<0-1>] [jitter=<0-1>]
//   off node=<i> at=<s>
//   on node=<i> at=<s>
//   txpower node=<i> at=<s> dbm=<dBm>
//   dayoffset at=<s> db=<dB>
//   blackout a=<i> b=<i> start=<s> end=<s> [oneway]

#include <cstdint>
#include <string>
#include <vector>

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace adhoc::faults {

enum class FaultKind : std::uint8_t {
  kInterference = 0,  ///< non-802.11 energy emitter (duty-cycled jammer)
  kNodeOff = 1,       ///< radio power-off (station crash)
  kNodeOn = 2,        ///< radio power-on (recovery)
  kTxPower = 3,       ///< tx-power / antenna-gain step
  kDayOffset = 4,     ///< mid-run shadowing day-offset change (Fig. 4)
  kLinkBlackout = 5,  ///< per-link total outage window
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

/// One timeline entry. Field meaning depends on `kind`; unused fields
/// keep their defaults (validate() enforces the per-kind rules).
struct FaultEvent {
  FaultKind kind = FaultKind::kInterference;
  sim::Time at = sim::Time::zero();     ///< activation instant
  sim::Time until = sim::Time::zero();  ///< window end (interference, blackout)
  std::uint32_t node = 0;               ///< target node; blackout: tx side
  std::uint32_t peer = 0;               ///< blackout: rx side
  bool bidirectional = true;            ///< blackout affects both directions
  double value = 0.0;                   ///< power dBm / day-offset dB
  phy::Position position{};             ///< interference emitter location
  sim::Time period = sim::Time::zero(); ///< duty cycle (zero = one burst)
  double duty = 1.0;                    ///< on-fraction of each period
  double jitter = 0.0;                  ///< random start offset, fraction of slack
};

/// A validated fault timeline. Builders append and return *this so plans
/// compose fluently; validate() (called by the injector) enforces window
/// sanity, node bounds, off/on alternation and blackout overlap rules.
class FaultPlan {
 public:
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// Raw append (prefer the named builders).
  FaultPlan& add(FaultEvent e);

  /// Energy emitter at `pos` radiating `power_dbm` over [at, at+dur).
  /// period > 0 duty-cycles the window; jitter in [0, 1] randomises each
  /// burst start within its period's idle slack (drawn from the injector's
  /// dedicated "faults" substream).
  FaultPlan& jam(sim::Time at, sim::Time dur, phy::Position pos, double power_dbm,
                 sim::Time period = sim::Time::zero(), double duty = 1.0, double jitter = 0.0);
  FaultPlan& node_off(std::uint32_t node, sim::Time at);
  FaultPlan& node_on(std::uint32_t node, sim::Time at);
  FaultPlan& tx_power(std::uint32_t node, sim::Time at, double dbm);
  FaultPlan& day_offset(sim::Time at, double db);
  FaultPlan& blackout(std::uint32_t a, std::uint32_t b, sim::Time start, sim::Time end,
                      bool bidirectional = true);

  /// Throws std::invalid_argument with a specific message when the plan
  /// is inconsistent: negative times, empty windows, node indices >=
  /// `node_count`, off/on sequences that do not alternate starting with
  /// off, overlapping blackouts on the same directed link, or duty/jitter
  /// outside their ranges.
  void validate(std::size_t node_count) const;

  /// Canonical, byte-stable serialization: one line per event in plan
  /// order, every field in a fixed order, times as integer nanoseconds
  /// and doubles through the locale-free obs::json_number formatter.
  /// Two plans describe the same disturbance timeline iff their
  /// canonical texts match — the property the result cache keys on
  /// (cache::RunKey folds this text into the content hash).
  [[nodiscard]] std::string canonical_text() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parse the grammar documented at the top of this header. Throws
/// std::invalid_argument naming the offending statement on any error.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Named ready-made plans (see EXPERIMENTS.md):
///   none       — empty plan
///   midrun-jam — continuous interference burst, seconds 3..5
///   crash      — node 1 powers off at 3 s, recovers at 6 s
///   fig4-burst — LOS-crossing jam at 2..4 s plus a -4 dB day-offset step
///                at 3 s (the Fig. 4 bottom within-session spike)
[[nodiscard]] const std::vector<std::string>& builtin_plan_names();
[[nodiscard]] FaultPlan builtin_plan(const std::string& name);

/// One-paragraph grammar + builtin listing, appended to CLI errors.
[[nodiscard]] std::string fault_plan_grammar();

/// Resolve a --fault-plan argument: a builtin name, a readable file
/// containing a plan, or an inline spec (recognised by '='). Throws
/// std::invalid_argument listing the builtins and the grammar otherwise.
[[nodiscard]] FaultPlan load_fault_plan(const std::string& arg);

}  // namespace adhoc::faults
