// Multi-hop ad hoc chain: the extension the paper's introduction
// motivates. Stations 25 m apart relay packets with static routes; the
// end-to-end goodput drops with every hop because all hops share one
// collision domain.
//
//   $ ./multihop_chain [max_hops]  (default 4)

#include <cstdlib>
#include <iostream>

#include "app/cbr.hpp"
#include "app/sink.hpp"
#include "scenario/network.hpp"

using namespace adhoc;

namespace {

double chain_goodput_kbps(std::size_t hops, std::uint64_t seed) {
  const std::size_t n = hops + 1;
  sim::Simulator sim{seed};
  scenario::Network net{sim};
  for (std::size_t i = 0; i < n; ++i) {
    auto& node = net.add_node({25.0 * static_cast<double>(i), 0.0});
    node.set_forwarding(true);
  }
  const auto dst = net.node(n - 1).ip();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.node(i).routes().add_route(dst, net.node(i + 1).ip());
  }
  app::UdpSink sink{sim, net.udp(n - 1), 9000};
  auto& sock = net.udp(0).open(9000);
  app::CbrSource cbr{sim, sock, dst, 9000, 512, app::CbrSource::interval_for_rate(512, 6e6)};
  cbr.start(sim::Time::ms(10));
  sim.run_until(sim::Time::ms(500));
  sink.start_measuring();
  sim.run_until(sim::Time::ms(500) + sim::Time::sec(5));
  return sink.throughput_kbps();
}

}  // namespace

int main(int argc, char** argv) {
  const int max_hops = argc > 1 ? std::atoi(argv[1]) : 4;
  std::cout << "Multi-hop chain, 25 m spacing, saturated UDP at 11 Mbps\n"
            << "(11 Mbps TX range is ~30 m: every hop is a real relay)\n\n";
  double previous = 0.0;
  for (int h = 1; h <= max_hops; ++h) {
    const double kbps = chain_goodput_kbps(static_cast<std::size_t>(h),
                                           static_cast<std::uint64_t>(100 + h));
    std::cout << "  " << h << " hop(s), span " << h * 25 << " m : " << kbps << " kbps";
    if (h > 1 && previous > 0.0) {
      std::cout << "  (" << kbps / previous * 100.0 << "% of previous)";
    }
    std::cout << '\n';
    previous = kbps;
  }
  std::cout << "\nRelays share the channel with the source: goodput roughly halves\n"
               "per added hop until spatial reuse kicks in along longer chains.\n";
  return 0;
}
