// Rate vs range: sweep the distance between two stations and print the
// loss rate per data rate — the experiment behind the paper's Figure 3
// and Table 3, runnable interactively.
//
//   $ ./rate_vs_range [step_m]     (default 15 m)

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "experiments/experiments.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const double step = argc > 1 ? std::atof(argv[1]) : 15.0;

  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2};

  std::vector<double> distances;
  for (double d = 15.0; d <= 150.0; d += step) distances.push_back(d);

  std::cout << "Packet loss vs distance (broadcast probes, 512 B)\n\n";
  std::cout << std::setw(10) << "dist (m)";
  for (const phy::Rate r : phy::kAllRates) std::cout << std::setw(12) << phy::rate_name(r);
  std::cout << '\n';

  std::array<std::vector<experiments::LossPoint>, 4> curves;
  for (const phy::Rate r : phy::kAllRates) {
    experiments::LossSweepSpec spec;
    spec.rate = r;
    spec.distances_m = distances;
    spec.probes = 250;
    curves[phy::rate_index(r)] = experiments::loss_sweep(spec, cfg);
  }
  for (std::size_t i = 0; i < distances.size(); ++i) {
    std::cout << std::setw(10) << distances[i];
    for (const phy::Rate r : phy::kAllRates) {
      std::cout << std::setw(12) << std::fixed << std::setprecision(2)
                << curves[phy::rate_index(r)][i].loss;
    }
    std::cout << '\n';
  }

  std::cout << "\nEstimated transmission ranges (50% loss crossing):\n";
  for (const phy::Rate r : phy::kAllRates) {
    std::cout << "  " << std::setw(9) << phy::rate_name(r) << " : "
              << experiments::estimate_tx_range(r, cfg) << " m\n";
  }
  std::cout << "\n(ns-2's default would be 250 m for all rates — the paper's point.)\n";
  return 0;
}
