// Mobility + ARF: a station walks away from its peer while streaming
// saturated UDP. As the distance crosses each Table 3 range boundary,
// ARF steps the data rate down — the paper's rate/range trade-off
// (Fig. 3, Table 3) experienced as a walk.
//
//   $ ./mobile_rate_adaptation [speed_mps]   (default 4 m/s)

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "app/cbr.hpp"
#include "app/sink.hpp"
#include "mac/arf.hpp"
#include "phy/mobility.hpp"
#include "scenario/network.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const double speed = argc > 1 ? std::atof(argv[1]) : 4.0;

  sim::Simulator sim{7};
  scenario::NetworkConfig nc;
  nc.shadowing = phy::ShadowingParams{1.5, sim::Time::ms(20), 0.0};
  scenario::Network net{sim, nc};
  net::Node& receiver = net.add_node({0, 0});
  net::Node& sender = net.add_node({10, 0});

  phy::LinearMobility walk{{10, 0}, speed, 0.0};
  sender.radio().set_mobility(&walk);

  mac::ArfParams arf_params;
  arf_params.initial_rate = phy::Rate::kR11;
  mac::ArfController arf{sender.dcf(), arf_params};

  app::UdpSink sink{sim, net.udp(0), 9000};
  auto& sock = net.udp(1).open(9000);
  app::CbrSource cbr{sim, sock, receiver.ip(), 9000, 512,
                     app::CbrSource::interval_for_rate(512, 8e6)};
  cbr.start(sim::Time::ms(10));

  std::cout << "Sender walks away at " << speed << " m/s, ARF adapts the rate\n\n";
  std::cout << std::setw(8) << "t (s)" << std::setw(12) << "dist (m)" << std::setw(12)
            << "ARF rate" << std::setw(16) << "goodput (kbps)" << '\n';

  std::uint64_t last_bytes = 0;
  const auto dst_mac = receiver.mac_address();
  const double horizon = 130.0 / speed;  // walk past the 1 Mbps range
  for (int second = 1; second <= static_cast<int>(horizon); ++second) {
    sim.run_until(sim::Time::sec(second));
    const double dist = phy::distance(sender.radio().position(), receiver.radio().position());
    const std::uint64_t bytes = net.node(0).dcf().counters().msdu_delivered_up * 512;
    const double kbps = static_cast<double>(bytes - last_bytes) * 8.0 / 1000.0;
    last_bytes = bytes;
    std::cout << std::setw(8) << second << std::setw(12) << std::fixed << std::setprecision(1)
              << dist << std::setw(12) << phy::rate_name(arf.rate_for(dst_mac))
              << std::setw(16) << std::setprecision(0) << kbps << '\n';
  }
  std::cout << "\nRate steps down near ~30 m (11), ~70 m (5.5), ~95 m (2) and the\n"
               "link dies past ~120 m — Table 3 of the paper, on the move.\n"
            << "(ARF: " << arf.rate_increases() << " increases, " << arf.rate_decreases()
            << " decreases, " << arf.probe_failures() << " failed probes)\n";
  return 0;
}
