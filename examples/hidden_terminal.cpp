// Hidden/exposed stations: the paper's four-station scenario (Figure 6)
// played live. Two saturated UDP sessions, S1->S2 and S3->S4, at
// 11 Mbps. S2 is exposed to S4's ACK traffic and cannot return its own
// MAC ACKs, so session 1 starves — the paper's headline unfairness.
//
//   $ ./hidden_terminal [d23]      (default 82.5 m)

#include <cstdlib>
#include <iostream>

#include "experiments/experiments.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const double d23 = argc > 1 ? std::atof(argv[1]) : 82.5;

  experiments::FourStationSpec spec;
  spec.d12_m = 25.0;
  spec.d23_m = d23;
  spec.d34_m = 25.0;
  spec.rate = phy::Rate::kR11;
  spec.transport = scenario::Transport::kUdp;

  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2, 3};
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(5);

  std::cout << "Four stations in a line: S1 <-25m-> S2 <-" << d23 << "m-> S3 <-25m-> S4\n"
            << "Sessions: S1->S2 and S3->S4, saturated UDP at 11 Mbps\n\n";
  for (const bool rts : {false, true}) {
    spec.rts = rts;
    const auto r = experiments::four_station(spec, cfg);
    std::cout << (rts ? "RTS/CTS   " : "basic     ") << " S1->S2: " << r.session1_kbps.mean
              << " kbps   S3->S4: " << r.session2_kbps.mean << " kbps\n";
  }
  std::cout << "\nAt the paper's distances, session 2 dominates: S2 senses S3/S4\n"
               "activity it cannot decode, defers its ACKs, and S1 backs off as if\n"
               "colliding. Try './hidden_terminal 200' to decouple the sessions.\n";
  return 0;
}
