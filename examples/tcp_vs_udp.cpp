// TCP vs UDP over one 802.11b link, across all four data rates — the
// single-session face of the paper's Figure 2, plus the analytical
// bounds of Table 2, side by side.
//
//   $ ./tcp_vs_udp

#include <iomanip>
#include <iostream>

#include "analysis/throughput_model.hpp"
#include "experiments/experiments.hpp"

using namespace adhoc;

int main() {
  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2};
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(5);

  const analysis::ThroughputModel model{analysis::Assumptions::standard()};

  std::cout << "Single saturated session, 512 B packets, basic access, 10 m link\n\n";
  std::cout << std::setw(10) << "rate" << std::setw(14) << "bound (Mbps)" << std::setw(14)
            << "UDP (Mbps)" << std::setw(14) << "TCP (Mbps)" << std::setw(12) << "TCP/UDP"
            << '\n';
  for (const phy::Rate rate : phy::kAllRates) {
    const double bound = model.max_throughput_basic_mbps(512, rate);
    const auto udp = experiments::two_node_throughput(
        {rate, false, scenario::Transport::kUdp, 512, 10.0}, cfg);
    const auto tcp = experiments::two_node_throughput(
        {rate, false, scenario::Transport::kTcp, 512, 10.0}, cfg);
    std::cout << std::setw(10) << phy::rate_name(rate) << std::setw(14) << std::fixed
              << std::setprecision(3) << bound << std::setw(14) << udp.mean / 1000.0
              << std::setw(14) << tcp.mean / 1000.0 << std::setw(11)
              << tcp.mean / udp.mean * 100.0 << "%\n";
  }
  std::cout << "\nUDP rides close to the Equation-(1) bound at every rate; TCP pays\n"
               "for its reverse ACK stream on the same half-duplex channel.\n";
  return 0;
}
