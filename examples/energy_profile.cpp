// Energy per delivered megabyte vs data rate.
//
// A counter-intuitive consequence of the paper's Table 2: slower rates
// hold the radio in TX much longer per byte, so despite identical
// transmit *power* (the paper notes 802.11 cards transmit at constant
// power), the *energy* cost per delivered byte explodes at 1-2 Mbps.
//
//   $ ./energy_profile

#include <iomanip>
#include <iostream>

#include "app/cbr.hpp"
#include "app/sink.hpp"
#include "experiments/experiments.hpp"
#include "scenario/network.hpp"

using namespace adhoc;

int main() {
  std::cout << "Saturated UDP for 10 simulated seconds at each rate, 10 m link\n\n";
  std::cout << std::setw(10) << "rate" << std::setw(14) << "goodput" << std::setw(14)
            << "TX time" << std::setw(14) << "sender E" << std::setw(14) << "J per MB"
            << '\n';
  std::cout << std::setw(10) << "" << std::setw(14) << "(Mbps)" << std::setw(14) << "(s)"
            << std::setw(14) << "(J)" << std::setw(14) << "" << '\n';

  for (const phy::Rate rate : phy::kAllRates) {
    sim::Simulator sim{11};
    scenario::NetworkConfig nc;
    nc.mac = experiments::mac_params_for(rate, false);
    scenario::Network net{sim, nc};
    net.add_node({0, 0});
    net.add_node({10, 0});
    app::UdpSink sink{sim, net.udp(1), 9000};
    auto& sock = net.udp(0).open(9000);
    app::CbrSource cbr{sim, sock, net.node(1).ip(), 9000, 512,
                       app::CbrSource::interval_for_rate(512, 8e6)};
    cbr.start(sim::Time::ms(10));
    sim.run_until(sim::Time::ms(100));
    sink.start_measuring();
    sim.run_until(sim::Time::ms(100) + sim::Time::sec(10));

    auto& radio = net.node(0).radio();
    const double mb = static_cast<double>(sink.bytes()) / 1e6;
    const double joules = radio.energy_consumed_j();
    std::cout << std::setw(10) << phy::rate_name(rate) << std::setw(14) << std::fixed
              << std::setprecision(3) << sink.throughput_bps() / 1e6 << std::setw(14)
              << radio.time_in_mode(phy::Radio::Mode::kTx).to_sec() << std::setw(14)
              << joules << std::setw(14) << (mb > 0 ? joules / mb : 0.0) << '\n';
  }
  std::cout << "\nSame transmit power, 4x range — but about 5x more energy per byte\n"
               "at 1 Mbps: the rate/range trade-off has an energy axis the paper's\n"
               "Table 3 doesn't show.\n";
  return 0;
}
