// On-demand multi-hop routing: the paper's introduction made concrete.
// Six stations in a line, 25 m apart, 11 Mbps (range ~30 m): only
// neighbours hear each other. AODV discovers a 5-hop route on the first
// packet; when a relay dies, the next send fails over to re-discovery.
//
//   $ ./aodv_demo

#include <iostream>
#include <memory>
#include <vector>

#include "net/aodv.hpp"
#include "scenario/network.hpp"
#include "transport/udp.hpp"

using namespace adhoc;

int main() {
  sim::Simulator sim{5};
  scenario::Network net{sim};
  std::vector<std::unique_ptr<net::Aodv>> aodv;
  constexpr std::size_t kN = 6;
  for (std::size_t i = 0; i < kN; ++i) {
    net.add_node({25.0 * static_cast<double>(i), 0.0});
    aodv.push_back(std::make_unique<net::Aodv>(net.node(i)));
  }

  std::uint64_t delivered = 0;
  net.udp(kN - 1).open(9000).set_rx_handler(
      [&](std::uint32_t, std::uint64_t seq, net::Ipv4Address, std::uint16_t) {
        delivered++;
        std::cout << "  [" << sim.now().to_ms() << " ms] datagram " << seq
                  << " delivered end-to-end\n";
      });

  const auto dst_ip = net.node(kN - 1).ip();
  auto send_one = [&](std::uint64_t seq) {
    auto packet = net::Packet::make(512);
    net::UdpHeader udp;
    udp.src_port = 9000;
    udp.dst_port = 9000;
    udp.length = net::UdpHeader::kBytes + 512;
    packet->push(udp);
    packet->app_seq = seq;
    aodv[0]->send(std::move(packet), dst_ip, net::kProtoUdp);
  };

  std::cout << "Line of " << kN << " stations, 25 m apart, 11 Mbps data rate.\n"
            << "Station 0 sends to station " << kN - 1 << " ("
            << (kN - 1) * 25 << " m away, ~" << kN - 1 << " hops):\n\n";

  sim.at(sim::Time::ms(10), [&] { send_one(1); });
  sim.run_until(sim::Time::sec(1));
  std::cout << "\nRoute after discovery: hop count = "
            << int(aodv[0]->hop_count(dst_ip).value_or(0)) << ", next hop = "
            << aodv[0]->next_hop(dst_ip).value_or(net::Ipv4Address{}).to_string() << "\n";
  std::cout << "RREQ floods: " << aodv[0]->counters().rreq_originated << " originated, "
            << aodv[2]->counters().rreq_forwarded << " forwarded by station 2\n\n";

  std::cout << "Now station 2 (a relay) fails...\n";
  sim.at(sim::Time::sec(2), [&] { net.node(2).radio().set_position({1000, 1000}); });
  sim.at(sim::Time::sec(3), [&] { send_one(2); });
  sim.run_until(sim::Time::sec(10));

  std::cout << "\nAfter the failure: station 1 invalidated "
            << aodv[1]->counters().routes_invalidated << " route(s) and sent "
            << aodv[1]->counters().rerr_sent << " RERR(s).\n"
            << "Delivered end-to-end in total: " << delivered << "/2\n"
            << "(With a 25 m grid there is no detour around the dead relay —\n"
            << " the second datagram is dropped after bounded re-discovery, as\n"
            << " the paper's short real-world ranges would predict.)\n";
  return 0;
}
