// Quickstart: build a two-station 802.11b ad hoc network, saturate it
// with UDP traffic, and compare the measured throughput against the
// paper's analytical bound.
//
//   $ ./quickstart
//
// Walks through the core public API: Simulator -> Network -> traffic ->
// measurement.

#include <iostream>

#include "analysis/throughput_model.hpp"
#include "app/cbr.hpp"
#include "app/sink.hpp"
#include "scenario/network.hpp"

using namespace adhoc;

int main() {
  // 1. A deterministic simulation universe (seed fixes every draw).
  sim::Simulator sim{/*seed=*/42};

  // 2. A network: calibrated outdoor PHY (Table 3 ranges), DCF MAC at
  //    11 Mbps, no RTS/CTS. Two stations 10 m apart.
  scenario::Network net{sim};
  net.add_node({0.0, 0.0});
  net.add_node({10.0, 0.0});

  // 3. Traffic: a saturating CBR source into a measuring sink.
  constexpr std::uint16_t kPort = 9000;
  constexpr std::uint32_t kPayload = 512;
  app::UdpSink sink{sim, net.udp(1), kPort};
  auto& socket = net.udp(0).open(kPort);
  app::CbrSource cbr{sim,       socket, net.node(1).ip(), kPort, kPayload,
                     app::CbrSource::interval_for_rate(kPayload, 8e6)};
  cbr.start(sim::Time::ms(10));

  // 4. Warm up, then measure 5 simulated seconds.
  sim.run_until(sim::Time::ms(500));
  sink.start_measuring();
  sim.run_until(sim::Time::ms(500) + sim::Time::sec(5));

  // 5. Compare against Equation (1) of the paper.
  const analysis::ThroughputModel model{analysis::Assumptions::standard()};
  const double bound = model.max_throughput_basic_mbps(kPayload, phy::Rate::kR11);
  const double measured = sink.throughput_bps() / 1e6;

  std::cout << "802.11b ad hoc quickstart (11 Mbps, m=" << kPayload << " B, basic access)\n"
            << "  analytical max throughput : " << bound << " Mbps\n"
            << "  simulated UDP goodput     : " << measured << " Mbps ("
            << measured / bound * 100.0 << "% of the bound)\n"
            << "  datagrams delivered       : " << sink.datagrams() << "\n"
            << "  MAC frames sent (+ACKs)   : " << net.node(0).dcf().counters().tx_data << " + "
            << net.node(1).dcf().counters().tx_ack << "\n";
  return 0;
}
