// Reproduces Table 2: analytical maximum throughput at each data rate,
// with and without RTS/CTS, m = 512 and 1024 bytes.
//
// Prints the paper's published value next to this library's equations
// under both assumption presets (see analysis/throughput_model.hpp).

#include <iostream>

#include "analysis/throughput_model.hpp"
#include "bench_common.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  const analysis::ThroughputModel standard{analysis::Assumptions::standard()};
  const analysis::ThroughputModel fitted{analysis::Assumptions::paper_fit()};
  report::Scorecard card{"table2"};

  std::cout << "=== Table 2: maximum throughput (Mbps) at different data rates ===\n\n";
  stats::Table table({"rate", "m (B)", "access", "paper", "model(std)", "model(fit)",
                      "fit err %"});
  stats::CsvWriter csv{"table2.csv"};
  csv.header({"rate_mbps", "m_bytes", "rts", "paper_mbps", "standard_mbps", "fit_mbps"});

  for (const auto& cell : analysis::paper_table2()) {
    const double std_v = cell.rts ? standard.max_throughput_rts_mbps(cell.m_bytes, cell.rate)
                                  : standard.max_throughput_basic_mbps(cell.m_bytes, cell.rate);
    const double fit_v = cell.rts ? fitted.max_throughput_rts_mbps(cell.m_bytes, cell.rate)
                                  : fitted.max_throughput_basic_mbps(cell.m_bytes, cell.rate);
    const double err = (fit_v / cell.paper_mbps - 1.0) * 100.0;
    table.add_row({std::string(phy::rate_name(cell.rate)), std::to_string(cell.m_bytes),
                   cell.rts ? "RTS/CTS" : "basic", stats::Table::fmt(cell.paper_mbps),
                   stats::Table::fmt(std_v), stats::Table::fmt(fit_v),
                   stats::Table::fmt(err, 1)});
    csv.numeric_row({phy::rate_mbps(cell.rate), static_cast<double>(cell.m_bytes),
                     cell.rts ? 1.0 : 0.0, cell.paper_mbps, std_v, fit_v});
    // Scorecard cell ids match tests/report/compare_test.cpp's layout.
    card.add_cell(std::string(phy::rate_name(cell.rate)) + "/" + std::to_string(cell.m_bytes) +
                      "B/" + (cell.rts ? "rts" : "basic"),
                  fit_v, cell.paper_mbps, "Mbps");
  }
  std::cout << table.to_string();

  const double util_pct =
      standard.max_throughput_basic_mbps(1024, phy::Rate::kR11) / 11.0 * 100.0;
  card.add_cell("utilization_11mbps_1024B", util_pct, std::nullopt, "%");
  std::cout << "\nBandwidth utilization at 11 Mbps, m=1024 (paper: < 44%): "
            << stats::Table::fmt(util_pct, 1) << "%\n";
  std::cout << "\n(series written to table2.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
