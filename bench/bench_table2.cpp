// Reproduces Table 2: analytical maximum throughput at each data rate,
// with and without RTS/CTS, m = 512 and 1024 bytes.
//
// Prints the paper's published value next to this library's equations
// under both assumption presets (see analysis/throughput_model.hpp).
//
// With --journeys, additionally runs one short saturated two-node
// simulation per Table 2 configuration at the journeys obs level and
// folds the measured per-phase delay means (buffer/queue/contend/
// airtime/retry, microseconds) into a delay_breakdown scorecard
// section — "where does the delay go" for each analytical cell. Opt-in:
// without the flag the document is byte-identical to the baseline.

#include <iostream>
#include <map>
#include <string>

#include "analysis/throughput_model.hpp"
#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "obs/observer.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

/// Measured journey phase means for one Table 2 configuration, from a
/// short saturated two-node run (seed pinned: the breakdown lands in
/// the byte-stable fidelity file).
std::map<std::string, double> measure_delay_breakdown(const analysis::Table2Cell& cell) {
  experiments::TwoNodeSpec spec;
  spec.rate = cell.rate;
  spec.rts = cell.rts;
  spec.payload_bytes = cell.m_bytes;
  experiments::ExperimentConfig cfg;
  cfg.warmup = sim::Time::ms(200);
  cfg.measure = sim::Time::sec(1);
  obs::RunObserver observer{obs::ObsLevel::kJourneys};
  (void)experiments::two_node_run(spec, cfg, /*seed=*/1, &observer);
  const auto flat = observer.registry()->flatten();
  std::map<std::string, double> phases;
  for (const char* phase :
       {"e2e_us", "buffer_us", "queue_us", "contend_us", "airtime_us", "retry_us"}) {
    const auto it = flat.find(std::string("journey.udp.0to1.") + phase + ".mean");
    if (it != flat.end()) phases[phase] = it->second;
  }
  return phases;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const tools::CliArgs args{argc, argv};
  const bool journeys = args.has("journeys");
  const bench::WallTimer timer;

  const analysis::ThroughputModel standard{analysis::Assumptions::standard()};
  const analysis::ThroughputModel fitted{analysis::Assumptions::paper_fit()};
  report::Scorecard card{"table2"};

  std::cout << "=== Table 2: maximum throughput (Mbps) at different data rates ===\n\n";
  stats::Table table({"rate", "m (B)", "access", "paper", "model(std)", "model(fit)",
                      "fit err %"});
  stats::CsvWriter csv{"table2.csv"};
  csv.header({"rate_mbps", "m_bytes", "rts", "paper_mbps", "standard_mbps", "fit_mbps"});

  for (const auto& cell : analysis::paper_table2()) {
    const double std_v = cell.rts ? standard.max_throughput_rts_mbps(cell.m_bytes, cell.rate)
                                  : standard.max_throughput_basic_mbps(cell.m_bytes, cell.rate);
    const double fit_v = cell.rts ? fitted.max_throughput_rts_mbps(cell.m_bytes, cell.rate)
                                  : fitted.max_throughput_basic_mbps(cell.m_bytes, cell.rate);
    const double err = (fit_v / cell.paper_mbps - 1.0) * 100.0;
    table.add_row({std::string(phy::rate_name(cell.rate)), std::to_string(cell.m_bytes),
                   cell.rts ? "RTS/CTS" : "basic", stats::Table::fmt(cell.paper_mbps),
                   stats::Table::fmt(std_v), stats::Table::fmt(fit_v),
                   stats::Table::fmt(err, 1)});
    csv.numeric_row({phy::rate_mbps(cell.rate), static_cast<double>(cell.m_bytes),
                     cell.rts ? 1.0 : 0.0, cell.paper_mbps, std_v, fit_v});
    // Scorecard cell ids match tests/report/compare_test.cpp's layout.
    const std::string id = std::string(phy::rate_name(cell.rate)) + "/" +
                           std::to_string(cell.m_bytes) + "B/" + (cell.rts ? "rts" : "basic");
    card.add_cell(id, fit_v, cell.paper_mbps, "Mbps");
    if (journeys) card.add_delay_breakdown(id, measure_delay_breakdown(cell));
  }
  std::cout << table.to_string();

  const double util_pct =
      standard.max_throughput_basic_mbps(1024, phy::Rate::kR11) / 11.0 * 100.0;
  card.add_cell("utilization_11mbps_1024B", util_pct, std::nullopt, "%");
  std::cout << "\nBandwidth utilization at 11 Mbps, m=1024 (paper: < 44%): "
            << stats::Table::fmt(util_pct, 1) << "%\n";
  std::cout << "\n(series written to table2.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
