// Reproduces Figure 12: the symmetric scenario (Figure 10 layout) at
// 2 Mbps — d = 25 / 60-65 / 25 m, sessions S1->S2 and S4->S3.

#include "four_station_common.hpp"

int main(int argc, char** argv) {
  return adhoc::benchfs::run_four_station_bench(
      argc, argv, "fig12", "symmetric, 2 Mbps, d(1,2)=25 m, d(2,3)=62.5 m, d(3,4)=25 m",
      "S4->S3", adhoc::experiments::fig12_spec(false, adhoc::scenario::Transport::kUdp),
      "Paper shape check: balanced sharing at the lower rate, lower totals\n"
      "than fig11 (2 Mbps channel).");
}
