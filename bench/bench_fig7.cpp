// Reproduces Figure 7: four stations at 11 Mbps, d = 25 / 80-85 / 25 m
// (Figure 6 layout), sessions S1->S2 and S3->S4.
//
// Paper shape: under UDP, session 2 wins heavily — S2 is exposed to S4
// and cannot return its MAC ACKs, so S1 backs off as if colliding; the
// same asymmetry persists with RTS/CTS (S3's RTS makes S2 withhold its
// CTS). Under TCP the difference shrinks.

#include "four_station_common.hpp"

int main(int argc, char** argv) {
  return adhoc::benchfs::run_four_station_bench(
      argc, argv, "fig7", "11 Mbps, d(1,2)=25 m, d(2,3)=82.5 m, d(3,4)=25 m", "S3->S4",
      adhoc::experiments::fig7_spec(false, adhoc::scenario::Transport::kUdp),
      "Paper shape check: UDP strongly favours S3->S4 (both with and without\n"
      "RTS/CTS); TCP reduces but does not remove the gap.");
}
