// Extension bench: DCF saturation throughput vs station count — the
// simulated MAC against the Bianchi (JSAC 2000) analytical model with
// the paper's 802.11b parameters. Not a table from the paper itself, but
// the canonical multi-station generalization of its Equations (1)/(2);
// it validates the simulator's contention machinery.

#include <iostream>

#include "analysis/bianchi.hpp"
#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(5);

  report::Scorecard card{"bianchi"};
  std::cout << "=== Saturation throughput vs contention: simulation vs Bianchi ===\n"
            << "(11 Mbps, m=512 B, basic access)\n\n";
  stats::Table table({"stations", "model (Mbps)", "sim (Mbps)", "sim/model %", "model p"});
  stats::CsvWriter csv{"bianchi.csv"};
  csv.header({"n", "model_mbps", "sim_mbps", "collision_p"});

  for (const std::uint32_t n : {1u, 2u, 3u, 5u, 8u, 12u}) {
    analysis::BianchiParams bp;
    bp.n_stations = n;
    const auto model = analysis::bianchi_saturation(bp);

    experiments::SaturationSpec spec;
    spec.n_stations = n;
    const auto sim_result = experiments::saturation_throughput(spec, cfg);

    table.add_row({std::to_string(n), stats::Table::fmt(model.throughput_mbps),
                   stats::Table::fmt(sim_result.mean),
                   stats::Table::fmt(sim_result.mean / model.throughput_mbps * 100.0, 1),
                   stats::Table::fmt(model.p)});
    csv.numeric_row({static_cast<double>(n), model.throughput_mbps, sim_result.mean, model.p});
    // The analytical model is the reference the simulated MAC is scored
    // against (the shape check says "within ~15%").
    card.add_cell("sim_mbps/basic/n=" + std::to_string(n), sim_result.mean,
                  model.throughput_mbps, "Mbps");
  }
  std::cout << table.to_string();

  std::cout << "\n--- with RTS/CTS ---\n\n";
  stats::Table rts_table({"stations", "model (Mbps)", "sim (Mbps)", "sim/model %"});
  for (const std::uint32_t n : {2u, 5u, 12u}) {
    analysis::BianchiParams bp;
    bp.n_stations = n;
    bp.rts = true;
    const auto model = analysis::bianchi_saturation(bp);
    experiments::SaturationSpec spec;
    spec.n_stations = n;
    spec.rts = true;
    const auto sim_result = experiments::saturation_throughput(spec, cfg);
    rts_table.add_row({std::to_string(n), stats::Table::fmt(model.throughput_mbps),
                       stats::Table::fmt(sim_result.mean),
                       stats::Table::fmt(sim_result.mean / model.throughput_mbps * 100.0, 1)});
    card.add_cell("sim_mbps/rts/n=" + std::to_string(n), sim_result.mean,
                  model.throughput_mbps, "Mbps");
  }
  std::cout << rts_table.to_string();

  std::cout << "\nShape check: aggregate goodput decays slowly with n; the simulated\n"
               "MAC should track the model within ~15% across the sweep. Under heavy\n"
               "contention RTS/CTS closes the gap to basic access (collisions only\n"
               "cost an RTS) — Bianchi's classic observation.\n";
  std::cout << "(series written to bianchi.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
