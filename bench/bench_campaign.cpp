// Campaign-engine scalability: the same 16-run two-node grid executed at
// 1, 2 and hardware_concurrency workers. Reports wall time, speedup and
// events/sec, and verifies the determinism contract — per-run metrics
// and per-point aggregates must be bit-identical at every worker count.
//
// Expected on a 4-core host: >= 2x wall-clock speedup at 4 workers for
// this grid. On fewer cores the speedup degrades gracefully; the
// bit-identical check must hold everywhere.
//
// A second pass saturates the campaign-service result cache: one cold
// submit populates a fresh on-disk cache, then repeated warm submits
// must be served entirely from it with byte-identical payloads. The
// hit rates (exactly 0 cold, 1 warm) are fidelity cells; served
// requests/sec is perf-sidecar material.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/result_cache.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "obs/svc/telemetry.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

experiments::ExperimentCampaign grid16(const experiments::ExperimentConfig& cfg) {
  // 4 points (rts × tcp) × the seed set = one run per (point, seed).
  auto def = experiments::fig2_campaign(cfg);
  def.plan.name = "scalability-16";
  return def;
}

bool identical(const campaign::CampaignResult& a, const campaign::CampaignResult& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i];
    const auto& rb = b.runs[i];
    if (ra.ok != rb.ok || ra.metrics.events != rb.metrics.events) return false;
    if (ra.metrics.metrics != rb.metrics.metrics) return false;  // exact double ==
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv, {1, 2, 3, 4});
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(4);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> job_counts{1, 2, 4};
  if (hw > 4) job_counts.push_back(hw);
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()), job_counts.end());

  std::cout << "=== Campaign engine scalability: 16-run grid, hardware_concurrency=" << hw
            << " ===\n\n";

  std::vector<campaign::CampaignResult> results;
  for (const unsigned jobs : job_counts) {
    const auto def = grid16(cfg);
    const campaign::CampaignEngine engine{{jobs, 3, nullptr}};
    results.push_back(engine.run(def.plan, def.run));
  }

  const double base = results.front().wall_seconds;
  stats::Table t({"jobs", "wall (s)", "speedup", "M events/s", "bit-identical"});
  bool all_identical = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::uint64_t events = 0;
    for (const auto& run : r.runs) events += run.metrics.events;
    const bool same = identical(results.front(), r);
    all_identical = all_identical && same;
    t.add_row({std::to_string(r.jobs), stats::Table::fmt(r.wall_seconds, 2),
               stats::Table::fmt(base / r.wall_seconds, 2),
               stats::Table::fmt(static_cast<double>(events) / r.wall_seconds / 1e6, 2),
               same ? "yes" : "NO"});
  }
  std::cout << t.to_string();

  std::cout << "\nDeterminism contract (per-run metrics and event counts identical at\n"
               "every worker count): " << (all_identical ? "HOLDS" : "VIOLATED") << '\n';
  if (hw < 4) {
    std::cout << "note: only " << hw << " hardware thread(s) — speedup is expected to be\n"
                 "flat here; the >= 2x criterion applies on a 4-core host.\n";
  }
  if (!all_identical) return 1;

  // === Cache saturation pass ===============================================
  // Drive serve::CampaignService directly (socket-free): a cold fig2
  // submit on a fresh cache computes every run, then repeated warm
  // submits must be all hits with payloads and scorecard byte-identical
  // to the cold pass.
  namespace fs = std::filesystem;
  const fs::path cache_root = fs::temp_directory_path() / "bench_campaign_cache";
  fs::remove_all(cache_root);

  serve::SubmitRequest req;
  req.grid = "fig2";
  req.seeds = opt.seeds;
  req.seconds = 1.0;
  req.warmup_s = 0.2;

  constexpr std::size_t kWarmSubmits = 8;
  std::size_t cold_hits = 0, cold_total = 0, warm_hits = 0, warm_total = 0;
  bool warm_identical = true;
  double warm_wall_ms = 0.0;
  {
    cache::ResultCache cache{{cache_root.string(), "", 0, 0}};
    const serve::CampaignService service{{opt.jobs, 2, &cache}};
    const auto cold = service.submit(req);
    cold_hits = cold.cache_hits;
    cold_total = cold.cache_hits + cold.cache_misses;

    const bench::WallTimer warm_timer;
    for (std::size_t i = 0; i < kWarmSubmits; ++i) {
      const auto warm = service.submit(req);
      warm_hits += warm.cache_hits;
      warm_total += warm.cache_hits + warm.cache_misses;
      warm_identical = warm_identical && warm.payloads == cold.payloads &&
                       warm.scorecard_json == cold.scorecard_json;
    }
    warm_wall_ms = warm_timer.elapsed_ms();
  }
  fs::remove_all(cache_root);

  // === Telemetry overhead pass =============================================
  // The same warm-serve loop with the full service-telemetry stack
  // attached — per-request phase tracing, counter/summary folds, and a
  // metrics exposition in both formats after every submit — prices the
  // observability layer against the plain loop above. Perf-sidecar
  // material only; the payloads must stay byte-identical.
  double telem_wall_ms = 0.0;
  bool telem_identical = true;
  {
    cache::ResultCache cache{{cache_root.string(), "", 0, 0}};
    obs::svc::ServiceTelemetry telemetry;
    telemetry.metrics.attach([&cache](obs::MetricsRegistry& reg) { cache.attach_metrics(reg); });
    serve::ServiceConfig scfg;
    scfg.jobs = opt.jobs;
    scfg.cache = &cache;
    scfg.metrics = &telemetry.metrics;
    const serve::CampaignService service{scfg};
    const auto cold = service.submit(req);
    const bench::WallTimer telem_timer;
    for (std::size_t i = 0; i < kWarmSubmits; ++i) {
      obs::svc::RequestTrace trace{telemetry.mint_request_id(), "submit"};
      const auto warm = service.submit(req, nullptr, &trace);
      telemetry.finish_request(trace);
      telem_identical = telem_identical && warm.payloads == cold.payloads;
      (void)telemetry.metrics.snapshot_json();
      (void)telemetry.metrics.prometheus_text();
    }
    telem_wall_ms = telem_timer.elapsed_ms();
  }
  fs::remove_all(cache_root);

  const double cold_rate =
      cold_total ? static_cast<double>(cold_hits) / static_cast<double>(cold_total) : 0.0;
  const double warm_rate =
      warm_total ? static_cast<double>(warm_hits) / static_cast<double>(warm_total) : 0.0;
  std::cout << "\n=== Result-cache saturation: fig2, " << cold_total << " runs/submit, "
            << kWarmSubmits << " warm submits ===\n"
            << "cold hit rate: " << cold_rate << "  warm hit rate: " << warm_rate
            << "  warm bytes identical to cold: " << (warm_identical ? "yes" : "NO") << '\n';
  std::cout << "telemetry-on warm pass: " << kWarmSubmits << " submits in " << telem_wall_ms
            << " ms, bytes identical: " << (telem_identical ? "yes" : "NO") << '\n';
  if (cold_hits != 0 || warm_hits != warm_total || !warm_identical || !telem_identical) {
    std::cout << "cache saturation contract VIOLATED\n";
    return 1;
  }

  // Scorecard: the jobs=1 grid aggregates are the fidelity record (they
  // are bit-identical at every worker count, as just verified); speedup,
  // per-worker wall times and served-request throughput are perf-sidecar
  // material. The cache hit rates are exact by construction, so they are
  // fidelity cells.
  report::Scorecard card{"campaign"};
  card.add_points(campaign::aggregate_by_point(results.front()), {{"kbps", "kbps"}});
  card.add_cell("determinism_contract_holds", 1.0);  // reaching here means it held
  card.add_cell("cache_cold_hit_rate", cold_rate);
  card.add_cell("cache_warm_hit_rate", warm_rate);
  card.add_cell("cache_warm_bytes_identical", 1.0);  // reaching here means they were
  for (const auto& r : results) card.add_campaign(r);
  card.set_perf("speedup_max_jobs", base / results.back().wall_seconds);
  if (warm_wall_ms > 0.0) {
    card.set_perf("served_requests_per_sec",
                  static_cast<double>(kWarmSubmits) / (warm_wall_ms / 1e3));
  }
  if (telem_wall_ms > 0.0) {
    card.set_perf("served_requests_per_sec_telemetry",
                  static_cast<double>(kWarmSubmits) / (telem_wall_ms / 1e3));
  }
  return bench::finish_bench(card, opt, timer);
}
