// Campaign-engine scalability: the same 16-run two-node grid executed at
// 1, 2 and hardware_concurrency workers. Reports wall time, speedup and
// events/sec, and verifies the determinism contract — per-run metrics
// and per-point aggregates must be bit-identical at every worker count.
//
// Expected on a 4-core host: >= 2x wall-clock speedup at 4 workers for
// this grid. On fewer cores the speedup degrades gracefully; the
// bit-identical check must hold everywhere.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

experiments::ExperimentCampaign grid16(const experiments::ExperimentConfig& cfg) {
  // 4 points (rts × tcp) × the seed set = one run per (point, seed).
  auto def = experiments::fig2_campaign(cfg);
  def.plan.name = "scalability-16";
  return def;
}

bool identical(const campaign::CampaignResult& a, const campaign::CampaignResult& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i];
    const auto& rb = b.runs[i];
    if (ra.ok != rb.ok || ra.metrics.events != rb.metrics.events) return false;
    if (ra.metrics.metrics != rb.metrics.metrics) return false;  // exact double ==
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv, {1, 2, 3, 4});
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(4);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> job_counts{1, 2, 4};
  if (hw > 4) job_counts.push_back(hw);
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()), job_counts.end());

  std::cout << "=== Campaign engine scalability: 16-run grid, hardware_concurrency=" << hw
            << " ===\n\n";

  std::vector<campaign::CampaignResult> results;
  for (const unsigned jobs : job_counts) {
    const auto def = grid16(cfg);
    const campaign::CampaignEngine engine{{jobs, 3, nullptr}};
    results.push_back(engine.run(def.plan, def.run));
  }

  const double base = results.front().wall_seconds;
  stats::Table t({"jobs", "wall (s)", "speedup", "M events/s", "bit-identical"});
  bool all_identical = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::uint64_t events = 0;
    for (const auto& run : r.runs) events += run.metrics.events;
    const bool same = identical(results.front(), r);
    all_identical = all_identical && same;
    t.add_row({std::to_string(r.jobs), stats::Table::fmt(r.wall_seconds, 2),
               stats::Table::fmt(base / r.wall_seconds, 2),
               stats::Table::fmt(static_cast<double>(events) / r.wall_seconds / 1e6, 2),
               same ? "yes" : "NO"});
  }
  std::cout << t.to_string();

  std::cout << "\nDeterminism contract (per-run metrics and event counts identical at\n"
               "every worker count): " << (all_identical ? "HOLDS" : "VIOLATED") << '\n';
  if (hw < 4) {
    std::cout << "note: only " << hw << " hardware thread(s) — speedup is expected to be\n"
                 "flat here; the >= 2x criterion applies on a 4-core host.\n";
  }
  if (!all_identical) return 1;

  // Scorecard: the jobs=1 grid aggregates are the fidelity record (they
  // are bit-identical at every worker count, as just verified); speedup
  // and per-worker wall times are perf-sidecar material.
  report::Scorecard card{"campaign"};
  card.add_points(campaign::aggregate_by_point(results.front()), {{"kbps", "kbps"}});
  card.add_cell("determinism_contract_holds", 1.0);  // reaching here means it held
  for (const auto& r : results) card.add_campaign(r);
  card.set_perf("speedup_max_jobs", base / results.back().wall_seconds);
  return bench::finish_bench(card, opt, timer);
}
