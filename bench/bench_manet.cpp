// Large-N MANET scalability: the manet_sweep grid (stations × mobility ×
// rts, CBR over AODV at constant station density) at bench length.
//
// Fidelity cells are the traffic outcomes — aggregate goodput (kbps),
// in-window delivery ratio and mean end-to-end delay per grid point —
// which are deterministic per seed. The spatial-index evidence rides the
// perf sidecar: per-point culled fraction (deliveries the medium never
// scheduled because the receiver sat beyond the carrier-sense cutoff)
// and events/sec. Expected shape: culled_frac ~ 0 at N <= 25 (the field
// fits inside one carrier-sense disc) and grows with N at fixed density,
// the per-transmission O(neighbors) scaling the uniform grid buys.

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "experiments/campaigns.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(2);

  const auto def = experiments::manet_sweep_campaign({5, 25, 100, 200}, cfg);
  const campaign::CampaignEngine engine{bench::engine_config(opt)};
  const auto result = engine.run(def.plan, def.run);
  auto points = campaign::aggregate_by_point(result);

  std::cout << "=== manet_sweep: " << result.runs.size() << " runs ("
            << result.error_count() << " failed), stations x mobility x rts ===\n\n";
  stats::Table t({"stations", "mobility", "rts", "kbps", "delivery", "delay (ms)", "culled"});
  for (const auto& p : points) {
    std::vector<std::string> row;
    for (const auto& [name, value] : p.params) row.push_back(stats::Table::fmt(value, 0));
    for (const char* m : {"kbps", "delivery", "delay_ms", "culled_frac"}) {
      const auto it = p.metrics.find(m);
      row.push_back(it == p.metrics.end() ? "-" : stats::Table::fmt(it->second.mean()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_string() << '\n';
  if (result.error_count() != 0) {
    for (const auto& r : result.runs) {
      if (!r.ok) std::cout << "run " << r.spec.run_index << " failed: " << r.error.message << '\n';
    }
    return 1;
  }

  report::Scorecard card{"manet"};
  // Culled fraction is index-tuning dependent (cutoff margins, slack) —
  // perf-sidecar material, so retuning the grid never trips the
  // byte-stable fidelity baseline. Traffic outcomes are the fidelity.
  for (auto& p : points) {
    const auto it = p.metrics.find("culled_frac");
    if (it != p.metrics.end()) {
      card.set_perf("culled_frac/" + campaign::point_id(p.params), it->second.mean());
      p.metrics.erase(it);
    }
  }
  card.add_points(points, {{"kbps", "kbps"}, {"delay_ms", "ms"}});
  card.add_campaign(result);
  return bench::finish_bench(card, opt, timer);
}
