// Reproduces Figure 9: four stations at 2 Mbps, d = 25 / 90-95 / 25 m
// (Figure 8 layout), sessions S1->S2 and S3->S4.
//
// Paper shape: at 2 Mbps the transmission range is much larger, so the
// stations share a common view of the channel and the system is more
// balanced than Figure 7 (though total throughput is lower).

#include "four_station_common.hpp"

int main(int argc, char** argv) {
  return adhoc::benchfs::run_four_station_bench(
      argc, argv, "fig9", "2 Mbps, d(1,2)=25 m, d(2,3)=92.5 m, d(3,4)=25 m", "S3->S4",
      adhoc::experiments::fig9_spec(false, adhoc::scenario::Transport::kUdp),
      "Paper shape check: visibly more balanced than fig7 — all stations are\n"
      "within (or near) one transmission/PCS range.");
}
