// Reproduces Figure 11: the symmetric scenario (Figure 10 layout) at
// 11 Mbps — d = 25 / 60-65 / 25 m, sessions S1->S2 and S4->S3 (both
// receivers in the middle).

#include "four_station_common.hpp"

int main(int argc, char** argv) {
  return adhoc::benchfs::run_four_station_bench(
      argc, argv, "fig11", "symmetric, 11 Mbps, d(1,2)=25 m, d(2,3)=62.5 m, d(3,4)=25 m",
      "S4->S3", adhoc::experiments::fig11_spec(false, adhoc::scenario::Transport::kUdp),
      "Paper shape check: symmetric roles => the two sessions are far closer\n"
      "to each other than in fig7 (results 'aligned with previous observations').");
}
