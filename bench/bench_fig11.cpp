// Reproduces Figure 11: the symmetric scenario (Figure 10 layout) at
// 11 Mbps — d = 25 / 60-65 / 25 m, sessions S1->S2 and S4->S3 (both
// receivers in the middle).

#include "four_station_common.hpp"

int main() {
  adhoc::benchfs::run_four_station_bench(
      "fig11", "symmetric, 11 Mbps, d(1,2)=25 m, d(2,3)=62.5 m, d(3,4)=25 m", "S4->S3",
      [](bool rts, adhoc::scenario::Transport t) {
        return adhoc::experiments::fig11_spec(rts, t);
      },
      "Paper shape check: symmetric roles => the two sessions are far closer\n"
      "to each other than in fig7 (results 'aligned with previous observations').");
  return 0;
}
