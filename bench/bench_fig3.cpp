// Reproduces Figure 3: packet-loss rate vs distance between two
// stations, one curve per data rate (1, 2, 5.5, 11 Mbps).
//
// Paper shape: sigmoidal curves ordered by rate — 11 Mbps dies first
// (~30 m), then 5.5 (~70 m), 2 (~90-100 m), 1 Mbps last (~110-130 m).
//
// The 4 rates × 14 distances × 3 seeds sweep (168 runs) fans out over
// the campaign engine's worker pool.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;

  const campaign::CampaignEngine engine{bench::engine_config(opt)};
  const auto def = experiments::fig3_campaign(cfg, /*probes=*/300);
  const auto result = engine.run(def.plan, def.run);
  const auto points = campaign::aggregate_by_point(result);

  report::Scorecard card{"fig3"};
  card.add_campaign(result);
  card.add_points(points, {{"loss", "loss"}});

  // Index mean loss by (rate, distance) for the table below.
  std::map<std::pair<double, double>, double> loss;
  for (const auto& p : points) {
    double rate = 0.0;
    double distance = 0.0;
    for (const auto& [name, value] : p.params) {
      if (name == "rate_mbps") rate = value;
      if (name == "distance_m") distance = value;
    }
    loss[{rate, distance}] = p.metrics.at("loss").mean();
  }

  const auto distances = experiments::fig3_distances();
  std::cout << "=== Figure 3: packet loss rate vs distance, per data rate ===\n\n";
  stats::Table table({"distance (m)", "11 Mbps", "5.5 Mbps", "2 Mbps", "1 Mbps"});
  stats::CsvWriter csv{"fig3.csv"};
  csv.header({"distance_m", "loss_11", "loss_5_5", "loss_2", "loss_1"});
  for (const double d : distances) {
    const double l11 = loss.at({11, d});
    const double l55 = loss.at({5.5, d});
    const double l2 = loss.at({2, d});
    const double l1 = loss.at({1, d});
    table.add_row({stats::Table::fmt(d, 0), stats::Table::fmt(l11, 2), stats::Table::fmt(l55, 2),
                   stats::Table::fmt(l2, 2), stats::Table::fmt(l1, 2)});
    csv.numeric_row({d, l11, l55, l2, l1});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: curves rise in rate order; 11 Mbps saturates "
               "by ~40 m, 1 Mbps survives past 110 m.\n";
  std::cout << "(series written to fig3.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
