// Reproduces Figure 3: packet-loss rate vs distance between two
// stations, one curve per data rate (1, 2, 5.5, 11 Mbps).
//
// Paper shape: sigmoidal curves ordered by rate — 11 Mbps dies first
// (~30 m), then 5.5 (~70 m), 2 (~90-100 m), 1 Mbps last (~110-130 m).

#include <iostream>

#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main() {
  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2, 3};

  const auto distances = experiments::fig3_distances();
  std::array<std::vector<experiments::LossPoint>, 4> curves;
  for (const phy::Rate rate : phy::kAllRates) {
    experiments::LossSweepSpec spec;
    spec.rate = rate;
    spec.distances_m = distances;
    spec.probes = 300;
    curves[phy::rate_index(rate)] = experiments::loss_sweep(spec, cfg);
  }

  std::cout << "=== Figure 3: packet loss rate vs distance, per data rate ===\n\n";
  stats::Table table({"distance (m)", "11 Mbps", "5.5 Mbps", "2 Mbps", "1 Mbps"});
  stats::CsvWriter csv{"fig3.csv"};
  csv.header({"distance_m", "loss_11", "loss_5_5", "loss_2", "loss_1"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const double l11 = curves[phy::rate_index(phy::Rate::kR11)][i].loss;
    const double l55 = curves[phy::rate_index(phy::Rate::kR5_5)][i].loss;
    const double l2 = curves[phy::rate_index(phy::Rate::kR2)][i].loss;
    const double l1 = curves[phy::rate_index(phy::Rate::kR1)][i].loss;
    table.add_row({stats::Table::fmt(distances[i], 0), stats::Table::fmt(l11, 2),
                   stats::Table::fmt(l55, 2), stats::Table::fmt(l2, 2),
                   stats::Table::fmt(l1, 2)});
    csv.numeric_row({distances[i], l11, l55, l2, l1});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: curves rise in rate order; 11 Mbps saturates "
               "by ~40 m, 1 Mbps survives past 110 m.\n";
  std::cout << "(series written to fig3.csv)\n";
  return 0;
}
