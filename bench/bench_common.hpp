#pragma once
// Shared harness for the bench_* binaries: the --seeds/--out/--jobs
// command line every bench accepts, the wall timer feeding the perf
// sidecar, and the scorecard finish step (write BENCH_<name>.json,
// print where it went).
//
// Usage pattern:
//
//   int main(int argc, char** argv) {
//     const auto opt = adhoc::bench::parse_bench_options(argc, argv);
//     adhoc::bench::WallTimer timer;
//     adhoc::report::Scorecard card{"fig2"};
//     ... run, card.add_cell(...) ...
//     return adhoc::bench::finish_bench(card, opt, timer);
//   }
//
// Exit-code contract (shared with tools/bench_check.py): 0 success,
// 1 runtime failure (e.g. unwritable --out), 2 usage error.

#include <chrono>  // NOLINT-ADHOC(wall-clock) bench wall timing feeds the perf sidecar only
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "cli_args.hpp"
#include "report/scorecard.hpp"

namespace adhoc::bench {

struct BenchOptions {
  std::vector<std::uint64_t> seeds{1, 2, 3};
  std::string out_dir = ".";  ///< where BENCH_<name>.json lands
  unsigned jobs = 0;          ///< campaign workers; 0 = hardware default
};

/// "1,2,3" -> {1, 2, 3}. Throws std::invalid_argument on anything that
/// is not a comma-separated list of non-negative integers.
inline std::vector<std::uint64_t> parse_seed_list(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string part = text.substr(pos, comma - pos);
    std::size_t consumed = 0;
    std::uint64_t seed = 0;
    try {
      seed = std::stoull(part, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != part.size() || part.empty()) {
      throw std::invalid_argument("--seeds expects a comma-separated integer list, got '" +
                                  text + "'");
    }
    seeds.push_back(seed);
    pos = comma + 1;
  }
  if (seeds.empty()) throw std::invalid_argument("--seeds list is empty");
  return seeds;
}

/// Parse the shared bench command line. Prints usage and exits 2 on a
/// bad flag, so benches can call it unconditionally first thing.
inline BenchOptions parse_bench_options(int argc, char** argv,
                                        std::vector<std::uint64_t> default_seeds = {1, 2, 3}) {
  BenchOptions opt;
  opt.seeds = std::move(default_seeds);
  try {
    const tools::CliArgs args{argc, argv};
    if (args.has("help")) {
      std::cout << "usage: " << argv[0]
                << " [--seeds 1,2,3] [--out DIR] [--jobs N]\n"
                   "  --seeds  comma-separated replication seeds\n"
                   "  --out    directory for BENCH_<name>.json (default: .)\n"
                   "  --jobs   campaign worker threads (default: all cores)\n";
      std::exit(0);
    }
    if (args.has("seeds")) opt.seeds = parse_seed_list(args.str("seeds", ""));
    opt.out_dir = args.str("out", opt.out_dir);
    if (args.has("jobs")) opt.jobs = static_cast<unsigned>(args.positive_integer("jobs", 1));
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\nsee " << argv[0] << " --help\n";
    std::exit(2);
  }
  return opt;
}

/// Campaign-engine config honouring --jobs.
inline campaign::EngineConfig engine_config(const BenchOptions& opt) {
  campaign::EngineConfig cfg;
  cfg.jobs = opt.jobs;
  return cfg;
}

/// Wall clock for the perf sidecar. Never feeds the fidelity file.
class WallTimer {
 public:
  [[nodiscard]] double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();  // NOLINT-ADHOC(wall-clock)
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  // NOLINT-ADHOC-NEXTLINE(wall-clock) sanctioned perf-sidecar timing
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();  // NOLINT-ADHOC(wall-clock)
};

/// Record seeds + wall time, write BENCH_<name>.json (and the perf
/// sidecar) under --out, print the path. Returns the bench's exit code.
inline int finish_bench(report::Scorecard& card, const BenchOptions& opt,
                        const WallTimer& timer) {
  card.set_seeds(opt.seeds);
  const double wall_ms = timer.elapsed_ms();
  card.set_perf("wall_ms", wall_ms);
  const auto events = card.counters().find("events");
  if (events != card.counters().end() && wall_ms > 0.0) {
    card.set_perf("events_per_sec", static_cast<double>(events->second) / (wall_ms / 1e3));
  }
  try {
    const std::string path = card.write(opt.out_dir);
    std::cout << "(scorecard written to " << path << ")\n";
  } catch (const std::runtime_error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace adhoc::bench
