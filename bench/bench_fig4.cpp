// Reproduces Figure 4: the 1 Mbps loss-vs-distance curve measured on two
// different days (06/12/2002 vs 09/12/2002 in the paper).
//
// The "day" is a weather offset on the shadowing process: a good day
// extends the usable range by tens of meters, a bad day shrinks it —
// exactly the paper's point about non-constant transmission ranges.
//
// A third series re-runs day A under the builtin "fig4-burst" fault plan
// (mid-run interference burst, then a -4 dB weather step): the paper's
// disturbed-measurement case, where the loss curve shifts mid-sweep.

#include <iostream>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "faults/fault_plan.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;

  std::vector<double> distances;
  for (double d = 50.0; d <= 160.0; d += 10.0) distances.push_back(d);

  experiments::LossSweepSpec day_a;  // favourable propagation day
  day_a.rate = phy::Rate::kR1;
  day_a.distances_m = distances;
  day_a.probes = 300;
  day_a.day_offset_db = +2.5;

  experiments::LossSweepSpec day_b = day_a;  // adverse day
  day_b.day_offset_db = -2.5;

  const auto curve_a = experiments::loss_sweep(day_a, cfg);
  const auto curve_b = experiments::loss_sweep(day_b, cfg);

  // Day A again, but disturbed: each probe run (300 probes x 20 ms = 6 s)
  // takes a jam burst over seconds 2-4 and a -4 dB weather step at 3 s.
  experiments::ExperimentConfig disturbed_cfg = cfg;
  disturbed_cfg.faults = faults::builtin_plan("fig4-burst");
  const auto curve_d = experiments::loss_sweep(day_a, disturbed_cfg);

  report::Scorecard card{"fig4"};
  std::cout << "=== Figure 4: 1 Mbps transmission range on two different days ===\n\n";
  stats::Table table({"distance (m)", "day A (+2.5 dB)", "day B (-2.5 dB)",
                      "day A disturbed (fig4-burst)"});
  stats::CsvWriter csv{"fig4.csv"};
  csv.header({"distance_m", "loss_day_a", "loss_day_b", "loss_disturbed"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    table.add_row({stats::Table::fmt(distances[i], 0), stats::Table::fmt(curve_a[i].loss, 2),
                   stats::Table::fmt(curve_b[i].loss, 2),
                   stats::Table::fmt(curve_d[i].loss, 2)});
    csv.numeric_row({distances[i], curve_a[i].loss, curve_b[i].loss, curve_d[i].loss});
    const std::string d = "d=" + stats::Table::fmt(distances[i], 0);
    card.add_cell("loss/day_a/" + d, curve_a[i].loss, std::nullopt, "loss");
    card.add_cell("loss/day_b/" + d, curve_b[i].loss, std::nullopt, "loss");
    card.add_cell("loss/disturbed/" + d, curve_d[i].loss, std::nullopt, "loss");
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: the adverse-day curve rises earlier — the same "
               "link, on a different day, has a visibly shorter range. The disturbed "
               "series sits above day A: a mid-run burst plus weather step erodes the "
               "same link's measured range.\n";
  std::cout << "(series written to fig4.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
