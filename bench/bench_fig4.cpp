// Reproduces Figure 4: the 1 Mbps loss-vs-distance curve measured on two
// different days (06/12/2002 vs 09/12/2002 in the paper).
//
// The "day" is a weather offset on the shadowing process: a good day
// extends the usable range by tens of meters, a bad day shrinks it —
// exactly the paper's point about non-constant transmission ranges.

#include <iostream>

#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main() {
  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2, 3};

  std::vector<double> distances;
  for (double d = 50.0; d <= 160.0; d += 10.0) distances.push_back(d);

  experiments::LossSweepSpec day_a;  // favourable propagation day
  day_a.rate = phy::Rate::kR1;
  day_a.distances_m = distances;
  day_a.probes = 300;
  day_a.day_offset_db = +2.5;

  experiments::LossSweepSpec day_b = day_a;  // adverse day
  day_b.day_offset_db = -2.5;

  const auto curve_a = experiments::loss_sweep(day_a, cfg);
  const auto curve_b = experiments::loss_sweep(day_b, cfg);

  std::cout << "=== Figure 4: 1 Mbps transmission range on two different days ===\n\n";
  stats::Table table({"distance (m)", "day A (+2.5 dB)", "day B (-2.5 dB)"});
  stats::CsvWriter csv{"fig4.csv"};
  csv.header({"distance_m", "loss_day_a", "loss_day_b"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    table.add_row({stats::Table::fmt(distances[i], 0), stats::Table::fmt(curve_a[i].loss, 2),
                   stats::Table::fmt(curve_b[i].loss, 2)});
    csv.numeric_row({distances[i], curve_a[i].loss, curve_b[i].loss});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: the adverse-day curve rises earlier — the same "
               "link, on a different day, has a visibly shorter range.\n";
  std::cout << "(series written to fig4.csv)\n";
  return 0;
}
