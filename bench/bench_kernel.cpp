// google-benchmark microbenchmarks for the simulator substrate:
// scheduler throughput, RNG, propagation math, and full-stack
// events-per-second (how much simulated traffic one wall-second buys).
//
// Custom main: the shared bench flags (--seeds/--out/--jobs) are
// stripped before benchmark::Initialize sees the command line, then a
// deterministic scorecard pass re-runs fixed-seed kernel workloads whose
// outputs are simulation results (not timings) — those become the
// byte-stable BENCH_kernel.json; the wall clock goes to the sidecar.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "obs/observer.hpp"
#include "phy/calibration.hpp"
#include "phy/shadowing.hpp"
#include "scenario/network.hpp"
#include "scenario/runner.hpp"
#include "sim/scheduler.hpp"

using namespace adhoc;

namespace {

void BM_SchedulerScheduleExecute(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(sim::Time::ns(i * 13 % 5000), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.total_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleExecute);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(s.schedule_at(sim::Time::ns(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    s.run();
    benchmark::DoNotOptimize(s.total_cancelled());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_RngDraws(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_int(0, 1023));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

void BM_ShadowedRxPower(benchmark::State& state) {
  const auto& base = phy::default_outdoor_model();
  // Kernel micro-bench with no Simulator: a fixed literal seed is the
  // deterministic choice here, outside the master-seed substream tree.
  phy::ShadowedPropagation model{base, phy::ShadowingParams{}, sim::Rng{1}};  // NOLINT-ADHOC(rng-stream)
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 100;
    benchmark::DoNotOptimize(model.rx_power_dbm(15.0, {0, 0}, {80, 0}, sim::Time::us(t), {1, 2}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowedRxPower);

void BM_FullStackUdpSecond(benchmark::State& state) {
  // Cost of simulating one second of saturated two-node UDP at 11 Mbps.
  for (auto _ : state) {
    sim::Simulator sim{1};
    scenario::Network net{sim};
    net.add_node({0, 0});
    net.add_node({10, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(100);
    rc.measure = sim::Time::ms(900);
    const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kUdp}}, rc);
    benchmark::DoNotOptimize(r.sessions[0].bytes);
  }
}
BENCHMARK(BM_FullStackUdpSecond)->Unit(benchmark::kMillisecond);

void BM_FullStackUdpSecondObserved(benchmark::State& state) {
  // Same workload as BM_FullStackUdpSecond but fully observed (metrics +
  // trace + scheduler profiling): the delta between the two is the
  // all-on observability cost; the off cost is the null-pointer checks
  // already included in the plain variant.
  std::map<std::string, double> profile;
  for (auto _ : state) {
    obs::RunObserver observer{obs::ObsLevel::kFull};
    sim::Simulator sim{1};
    scenario::Network net{sim};
    net.attach_observer(observer);
    net.add_node({0, 0});
    net.add_node({10, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(100);
    rc.measure = sim::Time::ms(900);
    const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kUdp}}, rc);
    observer.finalize(sim);
    profile = observer.registry()->flatten();
    benchmark::DoNotOptimize(r.sessions[0].bytes);
  }
  // Scheduler-profile summary: events, rate, queue depth, and the event
  // label that dominated scheduler wall time in the last replication.
  state.counters["sim_events"] = profile["scheduler.total_executed"];
  state.counters["sim_ev_per_s"] = profile["scheduler.events_per_sec"];
  state.counters["queue_hw"] = profile["scheduler.queue_high_water"];
  const std::string prefix = "scheduler.wall_ms_by_label.";
  std::string hot = "none";
  double hot_ms = 0.0;
  for (const auto& [key, value] : profile) {
    if (key.rfind(prefix, 0) == 0 && value > hot_ms) {
      hot_ms = value;
      hot = key.substr(prefix.size());
    }
  }
  state.SetLabel("hot=" + hot);
}
BENCHMARK(BM_FullStackUdpSecondObserved)->Unit(benchmark::kMillisecond);

void BM_FullStackUdpSecondJourneys(benchmark::State& state) {
  // Same workload with journey recording on top of full observability:
  // the delta against BM_FullStackUdpSecondObserved is the causal
  // packet-journey tracing cost (span bookkeeping + per-attempt phase
  // accounting + ledger).
  std::uint64_t minted = 0;
  for (auto _ : state) {
    obs::RunObserver observer{obs::ObsLevel::kJourneys};
    sim::Simulator sim{1};
    scenario::Network net{sim};
    net.attach_observer(observer);
    net.add_node({0, 0});
    net.add_node({10, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(100);
    rc.measure = sim::Time::ms(900);
    const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kUdp}}, rc);
    observer.finalize(sim);
    minted = observer.journeys()->ledger().minted;
    benchmark::DoNotOptimize(r.sessions[0].bytes);
  }
  state.counters["journeys"] = static_cast<double>(minted);
}
BENCHMARK(BM_FullStackUdpSecondJourneys)->Unit(benchmark::kMillisecond);

void BM_FullStackTcpSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim{1};
    scenario::Network net{sim};
    net.add_node({0, 0});
    net.add_node({10, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(100);
    rc.measure = sim::Time::ms(900);
    const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kTcp}}, rc);
    benchmark::DoNotOptimize(r.sessions[0].bytes);
  }
}
BENCHMARK(BM_FullStackTcpSecond)->Unit(benchmark::kMillisecond);

void BM_FourStationSecond(benchmark::State& state) {
  for (auto _ : state) {
    experiments::ExperimentConfig cfg;
    cfg.seeds = {1};
    cfg.warmup = sim::Time::ms(100);
    cfg.measure = sim::Time::ms(900);
    const auto r = experiments::four_station(
        experiments::fig7_spec(false, scenario::Transport::kUdp), cfg);
    benchmark::DoNotOptimize(r.session1_kbps.mean);
  }
}
BENCHMARK(BM_FourStationSecond)->Unit(benchmark::kMillisecond);

/// Deterministic scorecard pass: the same kernels, scored by their
/// simulation outputs (which are seed-determined) rather than timings.
int emit_scorecard(const adhoc::bench::BenchOptions& opt,
                   const adhoc::bench::WallTimer& timer) {
  report::Scorecard card{"kernel"};

  {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(sim::Time::ns(i * 13 % 5000), [] {});
    }
    s.run();
    card.set_counter("scheduler_executed", s.total_executed());
  }
  {
    // Fixed-count draw checksum: pins the RNG stream implementation.
    sim::Rng rng{opt.seeds.front()};  // NOLINT-ADHOC(rng-stream) kernel check outside a Simulator
    std::uint64_t sum = 0;
    for (int i = 0; i < 4096; ++i) sum += static_cast<std::uint64_t>(rng.uniform_int(0, 1023));
    card.add_cell("rng_checksum_4096", static_cast<double>(sum));
  }
  {
    const auto& base = phy::default_outdoor_model();
    phy::ShadowedPropagation model{base, phy::ShadowingParams{},
                                   sim::Rng{opt.seeds.front()}};  // NOLINT-ADHOC(rng-stream)
    card.add_cell("shadowed_rx_dbm/80m",
                  model.rx_power_dbm(15.0, {0, 0}, {80, 0}, sim::Time::us(100), {1, 2}),
                  std::nullopt, "dBm");
  }
  for (const std::uint64_t seed : opt.seeds) {
    // One simulated second of saturated two-node UDP: total bytes
    // delivered is a pure function of the seed.
    sim::Simulator sim{seed};
    scenario::Network net{sim};
    net.add_node({0, 0});
    net.add_node({10, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(100);
    rc.measure = sim::Time::ms(900);
    const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kUdp}}, rc);
    card.add_cell("udp_bytes_1s/seed=" + std::to_string(seed),
                  static_cast<double>(r.sessions[0].bytes), std::nullopt, "B");
  }
  {
    // Journeys-on vs journeys-off overhead for the same one-second
    // workload. Wall-clock numbers, so perf sidecar only — the
    // fidelity file stays byte-stable.
    const auto run_once = [](obs::RunObserver* observer) {
      sim::Simulator sim{1};
      scenario::Network net{sim};
      if (observer != nullptr) net.attach_observer(*observer);
      net.add_node({0, 0});
      net.add_node({10, 0});
      scenario::RunConfig rc;
      rc.warmup = sim::Time::ms(100);
      rc.measure = sim::Time::ms(900);
      const auto r = scenario::run_sessions(net, {{0, 1, scenario::Transport::kUdp}}, rc);
      if (observer != nullptr) observer->finalize(sim);
      return r.sessions[0].bytes;
    };
    const bench::WallTimer off_timer;
    const std::uint64_t off_bytes = run_once(nullptr);
    const double off_ms = off_timer.elapsed_ms();
    obs::RunObserver observer{obs::ObsLevel::kJourneys};
    const bench::WallTimer on_timer;
    const std::uint64_t on_bytes = run_once(&observer);
    const double on_ms = on_timer.elapsed_ms();
    if (on_bytes != off_bytes) {
      // Journey recording must never perturb the simulation.
      return 1;
    }
    card.set_perf("journeys_off_ms", off_ms);
    card.set_perf("journeys_on_ms", on_ms);
    if (off_ms > 0.0) {
      card.set_perf("journeys_overhead_pct", (on_ms / off_ms - 1.0) * 100.0);
    }
  }
  return adhoc::bench::finish_bench(card, opt, timer);
}

}  // namespace

int main(int argc, char** argv) {
  // Split the command line: --seeds/--out/--jobs (and their values) are
  // ours; everything else goes to google-benchmark untouched.
  std::vector<char*> ours{argv[0]};
  std::vector<char*> bm_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds" || a == "--out" || a == "--jobs") {
      ours.push_back(argv[i]);
      if (i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      bm_args.push_back(argv[i]);
    }
  }
  const auto opt =
      adhoc::bench::parse_bench_options(static_cast<int>(ours.size()), ours.data());
  const adhoc::bench::WallTimer timer;

  int bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_args.data())) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  return emit_scorecard(opt, timer);
}
