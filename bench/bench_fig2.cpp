// Reproduces Figure 2: theoretical maximum vs measured TCP/UDP
// throughput at 11 Mbps, m = 512 bytes, with and without RTS/CTS.
//
// Paper shape: UDP lands very close to the analytical bound; TCP is
// clearly below it (TCP-ACK airtime); RTS/CTS costs both some capacity.

#include <iostream>

#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main() {
  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2, 3};
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(6);

  const auto rows = experiments::run_fig2(cfg);

  std::cout << "=== Figure 2: ideal vs measured throughput, 11 Mbps, m=512 B ===\n\n";
  stats::Table table({"access", "ideal (Mbps)", "UDP real", "UDP/ideal %", "TCP real",
                      "TCP/ideal %"});
  stats::CsvWriter csv{"fig2.csv"};
  csv.header({"rts", "ideal_mbps", "udp_mbps", "tcp_mbps"});
  for (const auto& r : rows) {
    table.add_row({r.rts ? "RTS/CTS" : "no RTS/CTS", stats::Table::fmt(r.ideal_mbps),
                   stats::Table::fmt(r.udp_mbps),
                   stats::Table::fmt(r.udp_mbps / r.ideal_mbps * 100.0, 1),
                   stats::Table::fmt(r.tcp_mbps),
                   stats::Table::fmt(r.tcp_mbps / r.ideal_mbps * 100.0, 1)});
    csv.numeric_row({r.rts ? 1.0 : 0.0, r.ideal_mbps, r.udp_mbps, r.tcp_mbps});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: UDP ~= ideal, TCP visibly below "
               "(paper Fig. 2 shows UDP within a few % of ideal).\n";
  std::cout << "(series written to fig2.csv)\n";

  // Paper §3.1, last paragraph: "Similar results have been also obtained
  // ... when the NIC data rate is set to 1, 2 or 5.5 Mbps."
  std::cout << "\n--- other NIC rates, basic access (paper: 'similar results') ---\n\n";
  const analysis::ThroughputModel model{analysis::Assumptions::standard()};
  stats::Table others({"rate", "ideal (Mbps)", "UDP real", "TCP real"});
  for (const phy::Rate rate :
       {phy::Rate::kR1, phy::Rate::kR2, phy::Rate::kR5_5}) {
    const double ideal = model.max_throughput_basic_mbps(512, rate);
    const auto udp = experiments::two_node_throughput(
        {rate, false, scenario::Transport::kUdp, 512, 10.0}, cfg);
    const auto tcp = experiments::two_node_throughput(
        {rate, false, scenario::Transport::kTcp, 512, 10.0}, cfg);
    others.add_row({std::string(phy::rate_name(rate)), stats::Table::fmt(ideal),
                    stats::Table::fmt(udp.mean / 1000.0), stats::Table::fmt(tcp.mean / 1000.0)});
  }
  std::cout << others.to_string();
  return 0;
}
