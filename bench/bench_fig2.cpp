// Reproduces Figure 2: theoretical maximum vs measured TCP/UDP
// throughput at 11 Mbps, m = 512 bytes, with and without RTS/CTS.
//
// Paper shape: UDP lands very close to the analytical bound; TCP is
// clearly below it (TCP-ACK airtime); RTS/CTS costs both some capacity.
//
// Runs as a parallel campaign: the rts × transport grid fans out over
// all cores; aggregation is deterministic regardless of worker count.

#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

/// Mean kbps for the grid point matching the given axis values.
double mean_kbps(const std::vector<campaign::PointAggregate>& points, bool rts, bool tcp) {
  for (const auto& p : points) {
    bool match = true;
    for (const auto& [name, value] : p.params) {
      // Flag axes carry exactly 0.0 / 1.0 (campaign::RunSpec::flag).
      if (name == "rts" && (value != 0.0) != rts) match = false;  // NOLINT-ADHOC(fp-compare)
      if (name == "tcp" && (value != 0.0) != tcp) match = false;  // NOLINT-ADHOC(fp-compare)
      if (name == "rate_mbps") match = false;  // wrong campaign
    }
    if (match) return p.metrics.at("kbps").mean();
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(6);

  const campaign::CampaignEngine engine{bench::engine_config(opt)};
  const auto def = experiments::fig2_campaign(cfg);
  const auto result = engine.run(def.plan, def.run);
  const auto points = campaign::aggregate_by_point(result);

  report::Scorecard card{"fig2"};
  card.add_campaign(result);

  const analysis::ThroughputModel model{analysis::Assumptions::standard()};
  std::cout << "=== Figure 2: ideal vs measured throughput, 11 Mbps, m=512 B ===\n\n";
  stats::Table table({"access", "ideal (Mbps)", "UDP real", "UDP/ideal %", "TCP real",
                      "TCP/ideal %"});
  stats::CsvWriter csv{"fig2.csv"};
  csv.header({"rts", "ideal_mbps", "udp_mbps", "tcp_mbps"});
  for (const bool rts : {false, true}) {
    const double ideal = rts ? model.max_throughput_rts_mbps(512, phy::Rate::kR11)
                             : model.max_throughput_basic_mbps(512, phy::Rate::kR11);
    const double udp = mean_kbps(points, rts, false) / 1000.0;
    const double tcp = mean_kbps(points, rts, true) / 1000.0;
    table.add_row({rts ? "RTS/CTS" : "no RTS/CTS", stats::Table::fmt(ideal),
                   stats::Table::fmt(udp), stats::Table::fmt(udp / ideal * 100.0, 1),
                   stats::Table::fmt(tcp), stats::Table::fmt(tcp / ideal * 100.0, 1)});
    csv.numeric_row({rts ? 1.0 : 0.0, ideal, udp, tcp});
    // UDP is scored against the analytical bound (the paper's "very
    // close to ideal" claim); TCP has no crisp published number, so its
    // cells are gated by the checked-in baseline alone.
    const std::string access = rts ? "rts" : "basic";
    card.add_cell("udp_mbps/" + access, udp, ideal, "Mbps");
    card.add_cell("tcp_mbps/" + access, tcp, std::nullopt, "Mbps");
  }
  std::cout << table.to_string();
  std::cout << "\nPaper shape check: UDP ~= ideal, TCP visibly below "
               "(paper Fig. 2 shows UDP within a few % of ideal).\n";
  std::cout << "(series written to fig2.csv)\n";

  // Paper §3.1, last paragraph: "Similar results have been also obtained
  // ... when the NIC data rate is set to 1, 2 or 5.5 Mbps."
  std::cout << "\n--- other NIC rates, basic access (paper: 'similar results') ---\n\n";
  const auto rates_def = experiments::two_node_rates_campaign(cfg);
  const auto rates_result = engine.run(rates_def.plan, rates_def.run);
  const auto rate_points = campaign::aggregate_by_point(rates_result);
  card.add_campaign(rates_result);
  card.add_points(rate_points, {{"kbps", "kbps"}});
  stats::Table others({"rate", "ideal (Mbps)", "UDP real", "TCP real"});
  for (const phy::Rate rate : {phy::Rate::kR1, phy::Rate::kR2, phy::Rate::kR5_5}) {
    const double mbps = phy::rate_mbps(rate);
    double udp = 0.0;
    double tcp = 0.0;
    for (const auto& p : rate_points) {
      bool is_rate = false;
      bool is_tcp = false;
      for (const auto& [name, value] : p.params) {
        if (name == "rate_mbps" && value == mbps) is_rate = true;
        if (name == "tcp" && value != 0.0) is_tcp = true;  // NOLINT-ADHOC(fp-compare) 0/1 flag
      }
      if (is_rate) (is_tcp ? tcp : udp) = p.metrics.at("kbps").mean() / 1000.0;
    }
    others.add_row({std::string(phy::rate_name(rate)),
                    stats::Table::fmt(model.max_throughput_basic_mbps(512, rate)),
                    stats::Table::fmt(udp), stats::Table::fmt(tcp)});
  }
  std::cout << others.to_string();
  return bench::finish_bench(card, opt, timer);
}
