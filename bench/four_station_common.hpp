#pragma once
// Shared driver for the four-station reproduction benches
// (Figures 7, 9, 11, 12): runs the rts × tcp grid on the parallel
// campaign engine, prints per-session throughputs in the paper's
// layout, and emits the BENCH_<figure>.json scorecard.

#include <cmath>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

namespace adhoc::benchfs {

/// The aggregate for the (rts, tcp) grid point, or nullptr.
inline const campaign::PointAggregate* find_point(
    const std::vector<campaign::PointAggregate>& points, bool rts, bool tcp) {
  for (const auto& p : points) {
    bool match = true;
    for (const auto& [name, value] : p.params) {
      // Flag axes carry exactly 0.0 / 1.0 (campaign::RunSpec::flag).
      if (name == "rts" && (value != 0.0) != rts) match = false;  // NOLINT-ADHOC(fp-compare)
      if (name == "tcp" && (value != 0.0) != tcp) match = false;  // NOLINT-ADHOC(fp-compare)
    }
    if (match) return &p;
  }
  return nullptr;
}

inline int run_four_station_bench(int argc, char** argv, const std::string& figure,
                                  const std::string& layout, const std::string& session2_label,
                                  const experiments::FourStationSpec& base,
                                  const std::string& shape_note) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(6);

  const campaign::CampaignEngine engine{bench::engine_config(opt)};
  const auto def = experiments::four_station_campaign(base, cfg);
  const auto result = engine.run(def.plan, def.run);
  const auto points = campaign::aggregate_by_point(result);

  std::cout << "=== " << figure << ": " << layout << " ===\n\n";
  stats::Table table({"traffic", "access", "S1->S2 (kbps)", session2_label + " (kbps)",
                      "imbalance"});
  stats::CsvWriter csv{figure + ".csv"};
  csv.header({"tcp", "rts", "session1_kbps", "session2_kbps"});

  for (const bool tcp : {false, true}) {
    for (const bool rts : {false, true}) {
      const campaign::PointAggregate* p = find_point(points, rts, tcp);
      if (p == nullptr) continue;
      const auto& sum1 = p->metrics.at("s1_kbps");
      const auto& sum2 = p->metrics.at("s2_kbps");
      const double s1 = sum1.mean();
      const double s2 = sum2.mean();
      const double imb = (s1 + s2) > 0 ? std::abs(s1 - s2) / (s1 + s2) : 0.0;
      table.add_row({tcp ? "TCP" : "UDP", rts ? "RTS/CTS" : "no RTS/CTS",
                     stats::Table::fmt(s1, 0) + " +-" +
                         stats::Table::fmt(sum1.ci95_halfwidth(), 0),
                     stats::Table::fmt(s2, 0) + " +-" +
                         stats::Table::fmt(sum2.ci95_halfwidth(), 0),
                     stats::Table::fmt(imb, 2)});
      csv.numeric_row({tcp ? 1.0 : 0.0, rts ? 1.0 : 0.0, s1, s2});
    }
  }
  std::cout << table.to_string();
  std::cout << '\n' << shape_note << '\n';
  std::cout << "(series written to " << figure << ".csv)\n";

  report::Scorecard card{figure};
  card.add_points(points, {{"s1_kbps", "kbps"}, {"s2_kbps", "kbps"}});
  card.add_campaign(result);
  return bench::finish_bench(card, opt, timer);
}

}  // namespace adhoc::benchfs
