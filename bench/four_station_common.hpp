#pragma once
// Shared driver for the four-station reproduction benches
// (Figures 7, 9, 11, 12): runs UDP and TCP, with and without RTS/CTS,
// and prints per-session throughputs in the paper's layout.

#include <functional>
#include <iostream>
#include <string>

#include "experiments/experiments.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

namespace adhoc::benchfs {

using SpecFn = std::function<experiments::FourStationSpec(bool, scenario::Transport)>;

inline void run_four_station_bench(const std::string& figure, const std::string& layout,
                                   const std::string& session2_label, const SpecFn& spec_fn,
                                   const std::string& shape_note) {
  experiments::ExperimentConfig cfg;
  cfg.seeds = {1, 2, 3};
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(6);

  std::cout << "=== " << figure << ": " << layout << " ===\n\n";
  stats::Table table({"traffic", "access", "S1->S2 (kbps)", session2_label + " (kbps)",
                      "imbalance"});
  stats::CsvWriter csv{figure + ".csv"};
  csv.header({"tcp", "rts", "session1_kbps", "session2_kbps"});

  for (const auto transport : {scenario::Transport::kUdp, scenario::Transport::kTcp}) {
    for (const bool rts : {false, true}) {
      const auto r = experiments::four_station(spec_fn(rts, transport), cfg);
      const double s1 = r.session1_kbps.mean;
      const double s2 = r.session2_kbps.mean;
      const double imb = (s1 + s2) > 0 ? std::abs(s1 - s2) / (s1 + s2) : 0.0;
      table.add_row({transport == scenario::Transport::kUdp ? "UDP" : "TCP",
                     rts ? "RTS/CTS" : "no RTS/CTS",
                     stats::Table::fmt(s1, 0) + " +-" + stats::Table::fmt(r.session1_kbps.ci95, 0),
                     stats::Table::fmt(s2, 0) + " +-" + stats::Table::fmt(r.session2_kbps.ci95, 0),
                     stats::Table::fmt(imb, 2)});
      csv.numeric_row({transport == scenario::Transport::kTcp ? 1.0 : 0.0, rts ? 1.0 : 0.0,
                       s1, s2});
    }
  }
  std::cout << table.to_string();
  std::cout << '\n' << shape_note << '\n';
  std::cout << "(series written to " << figure << ".csv)\n";
}

}  // namespace adhoc::benchfs
