// Ablation studies on the design choices DESIGN.md calls out:
//  1. carrier-sense threshold (PCS range) -> four-station coupling,
//  2. control-frame rate (1 vs 2 Mbps) -> channel reservation radius,
//  3. ACK-requires-idle-medium (measured card behaviour) vs strict
//     standard ACKs -> the Figure 7 unfairness mechanism.

#include <iostream>

#include "experiments/experiments.hpp"
#include "phy/calibration.hpp"
#include "scenario/network.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

struct FourStationOutcome {
  double s1 = 0.0;
  double s2 = 0.0;
};

FourStationOutcome run_fig7_variant(double pcs_range_m, phy::Rate control_rate,
                                    bool ack_requires_idle) {
  stats::Summary s1;
  stats::Summary s2;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Simulator sim{seed};
    scenario::NetworkConfig nc;
    nc.shadowing = experiments::ExperimentConfig{}.shadowing;  // same field as fig7 runs
    nc.mac = experiments::mac_params_for(phy::Rate::kR11, /*rts=*/false);
    nc.mac.control_rate = control_rate;
    nc.mac.ack_requires_idle_medium = ack_requires_idle;
    // Re-derive the PHY with a custom PCS range.
    auto phy = phy::paper_calibrated_params(phy::default_outdoor_model());
    phy.cs_threshold_dbm =
        phy::threshold_for_range(phy::default_outdoor_model(), phy.tx_power_dbm, pcs_range_m);
    nc.phy_override = phy;

    scenario::Network net{sim, nc};
    net.add_node({0, 0});
    net.add_node({25, 0});
    net.add_node({107.5, 0});
    net.add_node({132.5, 0});
    scenario::RunConfig rc;
    rc.warmup = sim::Time::ms(500);
    rc.measure = sim::Time::sec(4);
    const auto r = scenario::run_sessions(
        net, {{0, 1, scenario::Transport::kUdp}, {2, 3, scenario::Transport::kUdp}}, rc);
    s1.add(r.sessions[0].kbps);
    s2.add(r.sessions[1].kbps);
  }
  return {s1.mean(), s2.mean()};
}

std::string fmt_pair(const FourStationOutcome& o) {
  return stats::Table::fmt(o.s1, 0) + " / " + stats::Table::fmt(o.s2, 0);
}

}  // namespace

int main() {
  std::cout << "=== Ablation 1: PCS range vs four-station coupling (fig7 layout, UDP) ===\n\n";
  {
    stats::Table t({"PCS range (m)", "S1->S2 / S3->S4 (kbps)", "note"});
    t.add_row({"60", fmt_pair(run_fig7_variant(60.0, phy::Rate::kR2, true)),
               "sessions decoupled (no mutual CS)"});
    t.add_row({"150 (default)", fmt_pair(run_fig7_variant(150.0, phy::Rate::kR2, true)),
               "paper regime: coupled, asymmetric"});
    t.add_row({"250", fmt_pair(run_fig7_variant(250.0, phy::Rate::kR2, true)),
               "ns-2-like: one big collision domain"});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 2: control-frame rate (fig7 layout, UDP) ===\n\n";
  {
    stats::Table t({"control rate", "S1->S2 / S3->S4 (kbps)"});
    t.add_row({"2 Mbps (default)", fmt_pair(run_fig7_variant(150.0, phy::Rate::kR2, true))});
    t.add_row({"1 Mbps", fmt_pair(run_fig7_variant(150.0, phy::Rate::kR1, true))});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 3: ACK policy (fig7 layout, UDP) ===\n\n";
  {
    stats::Table t({"ACK policy", "S1->S2 / S3->S4 (kbps)", "note"});
    t.add_row({"defer when busy (card)", fmt_pair(run_fig7_variant(150.0, phy::Rate::kR2, true)),
               "paper's observed behaviour"});
    t.add_row({"always at SIFS (standard)",
               fmt_pair(run_fig7_variant(150.0, phy::Rate::kR2, false)),
               "strict 802.11 responder"});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 4: paper-calibrated PHY vs ns-2 defaults (fig7 layout, UDP) ===\n\n";
  {
    // The paper's critique made concrete: with ns-2's TX_range=250 m /
    // PCS=550 m, all four stations decode everything — the topology that
    // produced the measured unfairness cannot even be expressed.
    auto run_with = [](const phy::PhyParams& phy) {
      stats::Summary s1;
      stats::Summary s2;
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        sim::Simulator sim{seed};
        scenario::NetworkConfig nc;
        nc.shadowing = experiments::ExperimentConfig{}.shadowing;
        nc.mac = experiments::mac_params_for(phy::Rate::kR11, false);
        nc.phy_override = phy;
        scenario::Network net{sim, nc};
        net.add_node({0, 0});
        net.add_node({25, 0});
        net.add_node({107.5, 0});
        net.add_node({132.5, 0});
        scenario::RunConfig rc;
        rc.warmup = sim::Time::ms(500);
        rc.measure = sim::Time::sec(4);
        const auto r = scenario::run_sessions(
            net, {{0, 1, scenario::Transport::kUdp}, {2, 3, scenario::Transport::kUdp}}, rc);
        s1.add(r.sessions[0].kbps);
        s2.add(r.sessions[1].kbps);
      }
      return FourStationOutcome{s1.mean(), s2.mean()};
    };
    stats::Table t({"PHY calibration", "S1->S2 / S3->S4 (kbps)", "imbalance"});
    const auto paper = run_with(phy::paper_calibrated_params(phy::default_outdoor_model()));
    const auto ns2 = run_with(phy::ns2_style_params(phy::default_outdoor_model()));
    t.add_row({"paper Table 3 ranges", fmt_pair(paper),
               stats::Table::fmt(std::abs(paper.s1 - paper.s2) / (paper.s1 + paper.s2), 2)});
    t.add_row({"ns-2 (250 m / 550 m)", fmt_pair(ns2),
               stats::Table::fmt(std::abs(ns2.s1 - ns2.s2) / (ns2.s1 + ns2.s2), 2)});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Interference range (paper Section 2 definition) ===\n\n";
  {
    stats::Table t({"rate", "SINR thr", "IF_range / link distance"});
    const auto p = phy::paper_calibrated_params(phy::default_outdoor_model());
    for (const phy::Rate r : phy::kAllRates) {
      const double f = phy::interference_range_factor(
          phy::default_outdoor_model().exponent(), p.sinr_threshold(r));
      t.add_row({std::string(phy::rate_name(r)),
                 stats::Table::fmt(p.sinr_threshold(r), 0) + " dB",
                 stats::Table::fmt(f, 2) + "x"});
    }
    std::cout << t.to_string();
    std::cout << "\nIF_range grows linearly with the sender-receiver distance and\n"
                 "exceeds TX_range, as the paper's Section 2 describes.\n\n";
  }

  std::cout << "Reading: the Figure 7 asymmetry appears once the PCS range couples\n"
               "the two sessions (ablation 1: at 60 m both run near solo speed).\n"
               "Given coupling, the imbalance is carried by carrier-sense asymmetry\n"
               "and the EIFS penalty at the exposed receiver S2; the responder's ACK\n"
               "policy and the control rate are second-order here (ablations 2-3) —\n"
               "i.e. the paper's suppressed-ACK hypothesis is sufficient but not\n"
               "necessary to produce the unfairness it measured.\n";
  return 0;
}
