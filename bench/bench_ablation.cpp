// Ablation studies on the design choices DESIGN.md calls out:
//  1. carrier-sense threshold (PCS range) -> four-station coupling,
//  2. control-frame rate (1 vs 2 Mbps) -> channel reservation radius,
//  3. ACK-requires-idle-medium (measured card behaviour) vs strict
//     standard ACKs -> the Figure 7 unfairness mechanism,
//  4. paper-calibrated PHY vs ns-2 defaults.
//
// Each ablation is a campaign (experiments/campaigns.hpp) executed on
// the parallel engine; the fig7-layout variants share one run function.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "phy/calibration.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

struct FourStationOutcome {
  double s1 = 0.0;
  double s2 = 0.0;
};

/// Run an ablation campaign, fold it into the scorecard (cells keyed
/// "<metric>/<point_id>", counters accumulated), and return per-point
/// (S1, S2) means in grid order.
std::vector<FourStationOutcome> run_points(const campaign::CampaignEngine& engine,
                                           const experiments::ExperimentCampaign& def,
                                           report::Scorecard& card) {
  const auto result = engine.run(def.plan, def.run);
  const auto points = campaign::aggregate_by_point(result);
  card.add_campaign(result);
  card.add_points(points, {{"s1_kbps", "kbps"}, {"s2_kbps", "kbps"}});
  std::vector<FourStationOutcome> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    out.push_back({p.metrics.at("s1_kbps").mean(), p.metrics.at("s2_kbps").mean()});
  }
  return out;
}

std::string fmt_pair(const FourStationOutcome& o) {
  return stats::Table::fmt(o.s1, 0) + " / " + stats::Table::fmt(o.s2, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;
  cfg.warmup = sim::Time::ms(500);
  cfg.measure = sim::Time::sec(4);

  const campaign::CampaignEngine engine{bench::engine_config(opt)};
  report::Scorecard card{"ablation"};

  std::cout << "=== Ablation 1: PCS range vs four-station coupling (fig7 layout, UDP) ===\n\n";
  {
    // Grid order matches the pcs_m axis: 60, 150, 250.
    const auto o = run_points(engine, experiments::ablation_pcs_campaign(cfg), card);
    stats::Table t({"PCS range (m)", "S1->S2 / S3->S4 (kbps)", "note"});
    t.add_row({"60", fmt_pair(o[0]), "sessions decoupled (no mutual CS)"});
    t.add_row({"150 (default)", fmt_pair(o[1]), "paper regime: coupled, asymmetric"});
    t.add_row({"250", fmt_pair(o[2]), "ns-2-like: one big collision domain"});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 2: control-frame rate (fig7 layout, UDP) ===\n\n";
  {
    const auto o = run_points(engine, experiments::ablation_control_rate_campaign(cfg), card);
    stats::Table t({"control rate", "S1->S2 / S3->S4 (kbps)"});
    t.add_row({"2 Mbps (default)", fmt_pair(o[0])});
    t.add_row({"1 Mbps", fmt_pair(o[1])});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 3: ACK policy (fig7 layout, UDP) ===\n\n";
  {
    const auto o = run_points(engine, experiments::ablation_ack_policy_campaign(cfg), card);
    stats::Table t({"ACK policy", "S1->S2 / S3->S4 (kbps)", "note"});
    t.add_row({"defer when busy (card)", fmt_pair(o[0]), "paper's observed behaviour"});
    t.add_row({"always at SIFS (standard)", fmt_pair(o[1]), "strict 802.11 responder"});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Ablation 4: paper-calibrated PHY vs ns-2 defaults (fig7 layout, UDP) ===\n\n";
  {
    // The paper's critique made concrete: with ns-2's TX_range=250 m /
    // PCS=550 m, all four stations decode everything — the topology that
    // produced the measured unfairness cannot even be expressed.
    const auto o = run_points(engine, experiments::ablation_phy_campaign(cfg), card);
    stats::Table t({"PHY calibration", "S1->S2 / S3->S4 (kbps)", "imbalance"});
    t.add_row({"paper Table 3 ranges", fmt_pair(o[0]),
               stats::Table::fmt(std::abs(o[0].s1 - o[0].s2) / (o[0].s1 + o[0].s2), 2)});
    t.add_row({"ns-2 (250 m / 550 m)", fmt_pair(o[1]),
               stats::Table::fmt(std::abs(o[1].s1 - o[1].s2) / (o[1].s1 + o[1].s2), 2)});
    std::cout << t.to_string() << '\n';
  }

  std::cout << "=== Interference range (paper Section 2 definition) ===\n\n";
  {
    stats::Table t({"rate", "SINR thr", "IF_range / link distance"});
    const auto p = phy::paper_calibrated_params(phy::default_outdoor_model());
    for (const phy::Rate r : phy::kAllRates) {
      const double f = phy::interference_range_factor(
          phy::default_outdoor_model().exponent(), p.sinr_threshold(r));
      t.add_row({std::string(phy::rate_name(r)),
                 stats::Table::fmt(p.sinr_threshold(r), 0) + " dB",
                 stats::Table::fmt(f, 2) + "x"});
      card.add_cell("if_range_factor/" + std::string(phy::rate_name(r)), f, std::nullopt, "x");
    }
    std::cout << t.to_string();
    std::cout << "\nIF_range grows linearly with the sender-receiver distance and\n"
                 "exceeds TX_range, as the paper's Section 2 describes.\n\n";
  }

  std::cout << "Reading: the Figure 7 asymmetry appears once the PCS range couples\n"
               "the two sessions (ablation 1: at 60 m both run near solo speed).\n"
               "Given coupling, the imbalance is carried by carrier-sense asymmetry\n"
               "and the EIFS penalty at the exposed receiver S2; the responder's ACK\n"
               "policy and the control rate are second-order here (ablations 2-3) —\n"
               "i.e. the paper's suppressed-ACK hypothesis is sufficient but not\n"
               "necessary to produce the unfairness it measured.\n";
  return bench::finish_bench(card, opt, timer);
}
