// Reproduces Table 3: estimated transmission ranges at each data rate,
// plus the control-frame ranges (control frames ride 1-2 Mbps, so an
// 11 Mbps session reserves the channel far beyond its data range).

#include <iostream>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "phy/calibration.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  const bench::WallTimer timer;

  experiments::ExperimentConfig cfg;
  cfg.seeds = opt.seeds;

  std::cout << "=== Table 3: transmission range estimates (50% loss crossing) ===\n\n";

  struct Row {
    phy::Rate rate;
    const char* paper;
    double paper_mid_m;  // midpoint of the paper's published range
  };
  const Row rows[] = {
      {phy::Rate::kR11, "30 m", 30.0},
      {phy::Rate::kR5_5, "70 m", 70.0},
      {phy::Rate::kR2, "90-100 m", 95.0},
      {phy::Rate::kR1, "110-130 m", 120.0},
  };

  report::Scorecard card{"table3"};
  stats::Table table({"rate", "paper data TX_range", "measured (sim)"});
  stats::CsvWriter csv{"table3.csv"};
  csv.header({"rate_mbps", "measured_range_m"});
  std::array<double, 4> measured{};
  for (const auto& row : rows) {
    const double r = experiments::estimate_tx_range(row.rate, cfg);
    measured[phy::rate_index(row.rate)] = r;
    table.add_row({std::string(phy::rate_name(row.rate)), row.paper,
                   stats::Table::fmt(r, 1) + " m"});
    csv.numeric_row({phy::rate_mbps(row.rate), r});
    card.add_cell("tx_range/" + std::string(phy::rate_name(row.rate)), r, row.paper_mid_m, "m");
  }
  std::cout << table.to_string();

  std::cout << "\nControl-frame TX ranges (paper: 90 m @2 Mbps, 120 m @1 Mbps):\n";
  stats::Table ctl({"control rate", "paper", "measured (sim)"});
  ctl.add_row({"2 Mbps", "90 m",
               stats::Table::fmt(measured[phy::rate_index(phy::Rate::kR2)], 1) + " m"});
  ctl.add_row({"1 Mbps", "120 m",
               stats::Table::fmt(measured[phy::rate_index(phy::Rate::kR1)], 1) + " m"});
  std::cout << ctl.to_string();

  std::cout << "\nns-2/GloMoSim default TX_range = 250 m; every measured range above "
               "is 2-8x shorter, as the paper reports.\n";
  std::cout << "(series written to table3.csv)\n";
  return bench::finish_bench(card, opt, timer);
}
