#pragma once
// Fail-fast validation for export-path flags (--metrics, --telemetry,
// --trace-json, --trace-csv, --scorecard): probe that the path can be
// opened for writing BEFORE any simulation time is spent, so a typo'd
// directory fails in milliseconds instead of after a full campaign.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

namespace adhoc::tools {

/// True when `path` is writable (creatable/appendable). On failure
/// prints "adhocsim: <flag> path is not writable: <path>" to `err` —
/// the message always names the offending path. Empty paths and "-"
/// (stdout) pass trivially. Probing appends nothing; a probe that had
/// to create the file removes it again, so a later failing flag does
/// not leave empty droppings behind.
inline bool require_writable(const std::string& flag, const std::string& path,
                             std::ostream& err = std::cerr) {
  if (path.empty() || path == "-") return true;
  const bool existed = static_cast<bool>(std::ifstream{path});
  std::ofstream probe{path, std::ios::app};
  const bool ok = static_cast<bool>(probe);
  probe.close();
  if (!ok) {
    err << "adhocsim: " << flag << " path is not writable: " << path << '\n';
  } else if (!existed) {
    std::remove(path.c_str());
  }
  return ok;
}

}  // namespace adhoc::tools
