#!/usr/bin/env python3
"""Benchmark-regression gate: diff fresh BENCH_*.json scorecards against
the checked-in baselines (bench/baselines/).

Mirrors the C++ comparator (src/report/compare.cpp) so CI and local runs
agree cell-for-cell:

  fidelity   a cell's sim value may not move more than --fidelity-tol
             relative to the baseline (denominator max(|baseline|, 1),
             so near-zero cells degrade to an absolute tolerance); where
             both sides carry a paper reference, |rel dev| may not
             worsen by more than --dev-tol absolute points. Cells that
             disappear fail; new cells are reported but pass (refresh
             the baseline to adopt them).
  perf       events_per_sec (from the BENCH_*.perf.json sidecar) may
             not drop by more than --perf-tol, and wall_ms may not rise
             by the mirrored factor. Perf drift is waivable per bench
             via --waivers (JSON: {"bench": "reason"}), or demoted to a
             warning wholesale with --perf-warn-only (for CI runners
             whose wall clock is not comparable to the baseline host).

Usage:
  bench_check.py --baselines DIR --current DIR [flags]
  bench_check.py --baselines DIR --current DIR --update

Exit codes: 0 clean, 1 drift detected, 2 usage / I-O error.
--update copies the current fidelity files over the baselines (byte
copies — the artifacts are already byte-stable) and exits 0.
"""

import argparse
import json
import pathlib
import shutil
import sys


def die(msg: str) -> None:
    print(f"bench_check: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path: pathlib.Path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        die(f"cannot open {path}: {e}")
    except json.JSONDecodeError as e:
        die(f"{path}: not valid JSON: {e}")


def cells_by_id(doc, path: pathlib.Path):
    if not isinstance(doc, dict) or "cells" not in doc:
        die(f"{path}: not a scorecard (no 'cells' member)")
    return {c["id"]: c for c in doc["cells"]}


def rel_dev(cell):
    """|sim - paper| / |paper|, or None when the cell has no paper value."""
    paper = cell.get("paper")
    if paper is None or paper == 0:
        return None
    return abs(cell["sim"] - paper) / abs(paper)


class Drifts:
    """Collects drift rows and renders the same table layout as the C++
    CompareReport, so the two front ends read identically in CI logs."""

    def __init__(self):
        self.rows = []
        self.fidelity_failed = False
        self.perf_failed = False

    def add(self, kind, bench, cell, baseline, current, failing, note):
        self.rows.append((kind, f"{bench}:{cell}", baseline, current, failing, note))
        if failing:
            if kind == "perf":
                self.perf_failed = True
            else:
                self.fidelity_failed = True

    def render(self) -> str:
        if not self.rows:
            return ""
        header = ("class", "cell / metric", "baseline", "current", "verdict", "note")
        body = [(k, i, f"{b:.3f}", f"{c:.3f}", "FAIL" if f else "info", n)
                for k, i, b, c, f, n in self.rows]
        widths = [max(len(r[i]) for r in [header] + body) for i in range(len(header))]
        lines = []
        for row in [header] + body:
            lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |")
        lines.insert(1, "|" + "|".join("-" * (w + 2) for w in widths) + "|")
        return "\n".join(lines) + "\n"


def compare_fidelity(bench, base_doc, cur_doc, base_path, cur_path, opt, drifts):
    base_cells = cells_by_id(base_doc, base_path)
    cur_cells = cells_by_id(cur_doc, cur_path)
    compared = 0
    for cell_id, base in base_cells.items():
        cur = cur_cells.get(cell_id)
        if cur is None:
            drifts.add("missing-cell", bench, cell_id, base["sim"], 0.0, True,
                       "cell disappeared from the current scorecard")
            continue
        compared += 1
        denom = max(abs(base["sim"]), 1.0)
        move = abs(cur["sim"] - base["sim"]) / denom
        if move > opt.fidelity_tol:
            drifts.add("fidelity", bench, cell_id, base["sim"], cur["sim"], True,
                       f"sim value moved {move * 100:.1f}% vs baseline")
        base_dev, cur_dev = rel_dev(base), rel_dev(cur)
        if base_dev is not None and cur_dev is not None:
            worsened = cur_dev - base_dev
            if worsened > opt.dev_tol:
                drifts.add("paper-dev", bench, cell_id, base_dev, cur_dev, True,
                           f"paper deviation worsened by {worsened * 100:.1f} points")
    for cell_id, cur in cur_cells.items():
        if cell_id not in base_cells:
            drifts.add("new-cell", bench, cell_id, 0.0, cur["sim"], False,
                       "new cell (refresh the baseline to adopt it)")
    return compared


def compare_perf(bench, base_path, cur_path, opt, drifts):
    """Perf sidecars are optional and machine-bound: silently skip when
    either side is absent."""
    base_side = base_path.parent / (base_path.name[:-len(".json")] + ".perf.json")
    cur_side = cur_path.parent / (cur_path.name[:-len(".json")] + ".perf.json")
    if not base_side.is_file() or not cur_side.is_file():
        return
    base_perf = load_json(base_side).get("perf", {})
    cur_perf = load_json(cur_side).get("perf", {})
    base_eps, cur_eps = base_perf.get("events_per_sec"), cur_perf.get("events_per_sec")
    if base_eps and cur_eps and base_eps > 0:
        drop = (base_eps - cur_eps) / base_eps
        if drop > opt.perf_tol:
            drifts.add("perf", bench, "events_per_sec", base_eps, cur_eps, True,
                       f"throughput dropped {drop * 100:.1f}%")
    base_ms, cur_ms = base_perf.get("wall_ms"), cur_perf.get("wall_ms")
    if base_ms and cur_ms and base_ms > 0:
        rise_limit = opt.perf_tol / (1.0 - opt.perf_tol)
        rise = (cur_ms - base_ms) / base_ms
        if rise > rise_limit:
            drifts.add("perf", bench, "wall_ms", base_ms, cur_ms, True,
                       f"wall time rose {rise * 100:.1f}%")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baselines", required=True, help="checked-in baseline dir")
    ap.add_argument("--current", required=True, help="dir with fresh BENCH_*.json")
    ap.add_argument("--fidelity-tol", type=float, default=0.05)
    ap.add_argument("--dev-tol", type=float, default=0.02)
    ap.add_argument("--perf-tol", type=float, default=0.30)
    ap.add_argument("--waivers", help="JSON file: {bench: reason} perf waivers")
    ap.add_argument("--perf-warn-only", action="store_true",
                    help="report perf drift but never fail on it")
    ap.add_argument("--no-perf", action="store_true", help="skip perf sidecars entirely")
    ap.add_argument("--bench", action="append", default=[],
                    help="restrict to these bench names (repeatable)")
    ap.add_argument("--update", action="store_true",
                    help="copy current fidelity files over the baselines and exit")
    args = ap.parse_args()

    baselines = pathlib.Path(args.baselines)
    current = pathlib.Path(args.current)
    if not current.is_dir():
        die(f"--current {current} is not a directory")

    if args.update:
        baselines.mkdir(parents=True, exist_ok=True)
        updated = []
        for path in sorted(current.glob("BENCH_*.json")):
            if path.name.endswith(".perf.json"):
                continue  # sidecars are machine-bound; never baseline them
            name = path.name[len("BENCH_"):-len(".json")]
            if args.bench and name not in args.bench:
                continue
            shutil.copyfile(path, baselines / path.name)
            updated.append(path.name)
        print(f"bench_check: refreshed {len(updated)} baseline(s) in {baselines}")
        for name in updated:
            print(f"  {name}")
        sys.exit(0)

    if not baselines.is_dir():
        die(f"--baselines {baselines} is not a directory")
    waivers = {}
    if args.waivers:
        waivers = load_json(pathlib.Path(args.waivers))
        if not isinstance(waivers, dict):
            die(f"--waivers {args.waivers}: expected a JSON object {{bench: reason}}")

    baseline_files = sorted(p for p in baselines.glob("BENCH_*.json")
                            if not p.name.endswith(".perf.json"))
    if args.bench:
        baseline_files = [p for p in baseline_files
                          if p.name[len("BENCH_"):-len(".json")] in args.bench]
    if not baseline_files:
        die(f"no BENCH_*.json baselines in {baselines}")

    drifts = Drifts()
    benches, cells = 0, 0
    waived_perf_failures = []
    for base_path in baseline_files:
        name = base_path.name[len("BENCH_"):-len(".json")]
        cur_path = current / base_path.name
        if not cur_path.is_file():
            drifts.add("missing-bench", name, "(whole scorecard)", 0.0, 0.0, True,
                       f"{cur_path} was not produced")
            continue
        benches += 1
        cells += compare_fidelity(name, load_json(base_path), load_json(cur_path),
                                  base_path, cur_path, args, drifts)
        if not args.no_perf:
            before = drifts.perf_failed
            drifts.perf_failed = False
            compare_perf(name, base_path, cur_path, args, drifts)
            if drifts.perf_failed and name in waivers:
                waived_perf_failures.append(f"{name} ({waivers[name]})")
                drifts.perf_failed = False
            drifts.perf_failed = drifts.perf_failed or before

    table = drifts.render()
    if table:
        print(table, end="")
    perf_failed = drifts.perf_failed and not args.perf_warn_only
    if drifts.perf_failed and args.perf_warn_only:
        print("bench_check: perf drift detected but --perf-warn-only is set")
    for waived in waived_perf_failures:
        print(f"bench_check: perf drift waived for {waived}")
    verdict = "DRIFT" if (drifts.fidelity_failed or perf_failed) else "ok"
    print(f"bench_check: {benches} bench(es), {cells} cells compared, "
          f"fidelity {'DRIFT' if drifts.fidelity_failed else 'ok'}, "
          f"perf {'DRIFT' if perf_failed else 'ok'} -> {verdict}")
    sys.exit(1 if verdict == "DRIFT" else 0)


if __name__ == "__main__":
    main()
