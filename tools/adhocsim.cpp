// adhocsim — command-line front end for the 802.11b ad hoc simulator.
//
//   adhocsim table2
//   adhocsim two-node [--rate 11] [--rts] [--tcp] [--distance 10]
//                     [--payload 512] [--seconds 8] [--seeds 3]
//   adhocsim four-station [--rate 11] [--d23 82.5] [--rts] [--tcp] [--reversed]
//   adhocsim range [--rate 2]
//   adhocsim saturation [--stations 8] [--rts]
//   adhocsim delay [--rate 11] [--distance 15] [--load-mbps 1.5]
//   adhocsim run --scenario fig7 [--seed 1] [--obs-level full]
//                [--trace-json t.json] [--trace-csv t.csv] [--metrics m.json]
//                [--journeys j.csv] [--journey-sample N]
//                [--fault-plan NAME|FILE|SPEC]
//   adhocsim run --scenario manet [--stations 50] [--placement grid|uniform]
//                [--mobility static|waypoint|gauss-markov] [--field M]
//                [--spacing M] [--flows N] [--flow-kbps K]
//   adhocsim campaign --grid fig2|rates|fig3|fig7|fig9|fig11|fig12|saturation|faults|manet_sweep
//                     [--jobs N] [--seeds N] [--seconds S] [--obs-level L]
//                     [--telemetry PATH|-] [--retries R] [--shard I --shards N]
//                     [--fault-plan NAME|FILE|SPEC] [--scorecard DIR]
//   adhocsim scorecard --baseline BENCH_x.json --current BENCH_x.json
//                      [--fidelity-tol F] [--dev-tol F] [--perf-tol F]
//                      [--no-perf] [--perf-waived]
//   adhocsim serve --socket PATH [--cache DIR] [--cache-entries N]
//                  [--cache-mb M] [--jobs N] [--retries R] [--quiet]
//                  [--log-format text|json] [--shutdown-grace-ms MS]
//                  [--flight-requests N] [--flight-errors K]
//                  [--flight-dump PATH]
//   adhocsim submit --socket PATH [--grid G] [--seeds N] [--seconds S]
//                   [--warmup W] [--obs-level L] [--fault-plan P]
//                   [--probes N] [--scorecard DIR] [--quiet]
//   adhocsim submit --socket PATH --stats | --ping | --shutdown
//                   | --metrics [--format json|prometheus] | --debug
//   adhocsim version | --version
//
// Every subcommand maps onto the library's experiments API; run with no
// arguments for usage.

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "analysis/bianchi.hpp"
#include "analysis/throughput_model.hpp"
#include "app/cbr.hpp"
#include "app/sink.hpp"
#include "cache/code_version.hpp"
#include "cache/result_cache.hpp"
#include "campaign/campaign.hpp"
#include "cli_args.hpp"
#include "cli_paths.hpp"
#include "faults/fault_plan.hpp"
#include "obs/observer.hpp"
#include "obs/svc/clock.hpp"
#include "obs/svc/log.hpp"
#include "obs/svc/telemetry.hpp"
#include "experiments/campaigns.hpp"
#include "experiments/experiments.hpp"
#include "experiments/manet.hpp"
#include "report/compare.hpp"
#include "report/scorecard.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stats/table.hpp"

using namespace adhoc;

namespace {

phy::Rate rate_flag(const tools::CliArgs& args) {
  return phy::rate_from_mbps(args.num("rate", 11.0));
}

experiments::ExperimentConfig config_flag(const tools::CliArgs& args) {
  experiments::ExperimentConfig cfg;
  cfg.seeds.clear();
  const auto n = args.positive_integer("seeds", 3);
  for (std::int64_t s = 1; s <= n; ++s) cfg.seeds.push_back(static_cast<std::uint64_t>(s));
  cfg.measure = sim::Time::from_sec(args.positive_num("seconds", 8.0));
  cfg.warmup = sim::Time::ms(500);
  // Scripted disturbances: builtin plan name, file path, or inline spec
  // (see faults::fault_plan_grammar()). Parse errors propagate to main's
  // handler, which prints them (grammar included) and exits non-zero.
  if (args.has("fault-plan")) {
    cfg.faults = faults::load_fault_plan(args.str("fault-plan", ""));
  }
  return cfg;
}

int cmd_table2() {
  const analysis::ThroughputModel model{analysis::Assumptions::paper_fit()};
  stats::Table t({"rate", "m (B)", "access", "max throughput (Mbps)"});
  for (const auto& cell : analysis::paper_table2()) {
    const double v = cell.rts ? model.max_throughput_rts_mbps(cell.m_bytes, cell.rate)
                              : model.max_throughput_basic_mbps(cell.m_bytes, cell.rate);
    t.add_row({std::string(phy::rate_name(cell.rate)), std::to_string(cell.m_bytes),
               cell.rts ? "RTS/CTS" : "basic", stats::Table::fmt(v)});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_two_node(const tools::CliArgs& args) {
  experiments::TwoNodeSpec spec;
  spec.rate = rate_flag(args);
  spec.rts = args.has("rts");
  spec.transport = args.has("tcp") ? scenario::Transport::kTcp : scenario::Transport::kUdp;
  spec.distance_m = args.num("distance", 10.0);
  spec.payload_bytes = static_cast<std::uint32_t>(args.integer("payload", 512));
  const auto cfg = config_flag(args);
  const auto r = experiments::two_node_throughput(spec, cfg);
  const analysis::ThroughputModel model{analysis::Assumptions::standard()};
  const double bound = spec.rts ? model.max_throughput_rts_mbps(spec.payload_bytes, spec.rate)
                                : model.max_throughput_basic_mbps(spec.payload_bytes, spec.rate);
  std::cout << phy::rate_name(spec.rate) << (spec.rts ? " RTS/CTS " : " basic ")
            << (args.has("tcp") ? "TCP" : "UDP") << " @ " << spec.distance_m << " m\n"
            << "  goodput : " << r.mean / 1000.0 << " +- " << r.ci95 / 1000.0 << " Mbps\n"
            << "  eq(1/2) : " << bound << " Mbps (" << r.mean / 10.0 / bound << "%)\n";
  return 0;
}

int cmd_four_station(const tools::CliArgs& args) {
  experiments::FourStationSpec spec;
  spec.rate = rate_flag(args);
  spec.rts = args.has("rts");
  spec.transport = args.has("tcp") ? scenario::Transport::kTcp : scenario::Transport::kUdp;
  spec.d23_m = args.num("d23", 82.5);
  spec.session2_reversed = args.has("reversed");
  const auto cfg = config_flag(args);
  const auto r = experiments::four_station(spec, cfg);
  std::cout << "S1->S2: " << r.session1_kbps.mean << " +- " << r.session1_kbps.ci95
            << " kbps\n"
            << (spec.session2_reversed ? "S4->S3: " : "S3->S4: ") << r.session2_kbps.mean
            << " +- " << r.session2_kbps.ci95 << " kbps\n";
  return 0;
}

int cmd_range(const tools::CliArgs& args) {
  const phy::Rate rate = rate_flag(args);
  auto cfg = config_flag(args);
  std::cout << "Estimating TX range at " << phy::rate_name(rate) << " (50% loss crossing)...\n";
  const double range = experiments::estimate_tx_range(rate, cfg);
  std::cout << "  " << range << " m  (paper Table 3: 30/70/90-100/110-130 m for "
               "11/5.5/2/1 Mbps)\n";
  return 0;
}

int cmd_saturation(const tools::CliArgs& args) {
  experiments::SaturationSpec spec;
  spec.n_stations = static_cast<std::uint32_t>(args.integer("stations", 8));
  spec.rts = args.has("rts");
  const auto cfg = config_flag(args);
  const auto simulated = experiments::saturation_throughput(spec, cfg);
  analysis::BianchiParams bp;
  bp.n_stations = spec.n_stations;
  bp.rts = spec.rts;
  const auto model = analysis::bianchi_saturation(bp);
  std::cout << spec.n_stations << " saturated stations ("
            << (spec.rts ? "RTS/CTS" : "basic") << ")\n"
            << "  simulated : " << simulated.mean << " Mbps aggregate\n"
            << "  bianchi   : " << model.throughput_mbps << " Mbps (p=" << model.p << ")\n";
  return 0;
}

int cmd_delay(const tools::CliArgs& args) {
  const phy::Rate rate = rate_flag(args);
  const double distance = args.num("distance", 15.0);
  const double load_mbps = args.num("load-mbps", 1.0);

  sim::Simulator sim{static_cast<std::uint64_t>(args.integer("seed", 1))};
  scenario::NetworkConfig nc;
  nc.mac = experiments::mac_params_for(rate, args.has("rts"));
  scenario::Network net{sim, nc};
  net.add_node({0, 0});
  net.add_node({distance, 0});
  app::UdpSink sink{sim, net.udp(1), 9000};
  auto& sock = net.udp(0).open(9000);
  app::CbrSource cbr{sim, sock, net.node(1).ip(), 9000, 512,
                     app::CbrSource::interval_for_rate(512, load_mbps * 1e6)};
  cbr.start(sim::Time::ms(10));
  sim.run_until(sim::Time::sec(10));

  const auto& d = sink.delay_ms();
  std::cout << "One-way delay at " << phy::rate_name(rate) << ", " << distance << " m, "
            << load_mbps << " Mbps offered (" << d.count() << " packets):\n"
            << "  p50 " << d.median() << " ms, p95 " << d.percentile(95) << " ms, p99 "
            << d.percentile(99) << " ms, max " << d.max() << " ms\n";
  return 0;
}

std::optional<obs::ObsLevel> obs_level_flag(const tools::CliArgs& args,
                                            const std::string& fallback) {
  const std::string name = args.str("obs-level", fallback);
  const auto level = obs::obs_level_from_string(name);
  if (!level) {
    std::cerr << "adhocsim: unknown --obs-level '" << name
              << "' (off|metrics|trace|full|journeys)\n";
  }
  return level;
}

/// One fully-observed replication: runs a paper scenario under a
/// RunObserver and exports the trace / metrics snapshots.
int cmd_run(const tools::CliArgs& args) {
  const std::string scen =
      args.choice("scenario", "fig7", {"two-node", "fig7", "fig9", "fig11", "fig12", "manet"});
  const auto level = obs_level_flag(args, "full");
  if (!level) return 1;
  auto cfg = config_flag(args);
  const auto seed = static_cast<std::uint64_t>(args.positive_integer("seed", 1));
  const bool rts = args.has("rts");
  const auto transport =
      args.has("tcp") ? scenario::Transport::kTcp : scenario::Transport::kUdp;

  obs::RunObserver observer{*level};
  const std::string trace_json = args.str("trace-json", "");
  const std::string trace_csv = args.str("trace-csv", "");
  const std::string metrics = args.str("metrics", "");
  // Reject export flags the chosen level cannot serve up front, before
  // spending wall time on the simulation.
  if ((!trace_json.empty() || !trace_csv.empty()) && observer.trace_sink() == nullptr) {
    std::cerr << "adhocsim run: " << (trace_json.empty() ? "--trace-csv" : "--trace-json")
              << " needs --obs-level trace or full\n";
    return 1;
  }
  if (!metrics.empty() && observer.registry() == nullptr) {
    std::cerr << "adhocsim run: --metrics needs --obs-level metrics or higher\n";
    return 1;
  }
  const std::string journeys_csv = args.str("journeys", "");
  if (!journeys_csv.empty() && observer.journeys() == nullptr) {
    std::cerr << "adhocsim run: --journeys needs --obs-level journeys\n";
    return 1;
  }
  if (observer.journeys() != nullptr) {
    observer.journeys()->set_sample_every(
        static_cast<std::uint32_t>(args.positive_integer("journey-sample", 1)));
  }
  // ... and reject unwritable export paths just as early.
  if (!tools::require_writable("--trace-json", trace_json) ||
      !tools::require_writable("--trace-csv", trace_csv) ||
      !tools::require_writable("--metrics", metrics) ||
      !tools::require_writable("--journeys", journeys_csv)) {
    return 1;
  }

  // Build id first: the one-observed-replication artifacts only mean
  // something pinned to the code that produced them.
  std::cout << "adhocsim " << cache::code_version() << '\n';
  if (scen == "two-node") {
    experiments::TwoNodeSpec spec;
    spec.rate = rate_flag(args);
    spec.rts = rts;
    spec.transport = transport;
    spec.distance_m = args.num("distance", 10.0);
    const auto r = experiments::two_node_run(spec, cfg, seed, &observer);
    std::cout << "two-node seed " << seed << ": " << r.value / 1000.0 << " Mbps, " << r.events
              << " events\n";
  } else if (scen == "manet") {
    experiments::ManetRunSpec spec;
    // 2 Mbps default: its ~100 m decode range matches the 60 m spacing.
    spec.rate = phy::rate_from_mbps(args.num("rate", 2.0));
    spec.rts = rts;
    spec.manet.stations = static_cast<std::size_t>(args.positive_integer("stations", 50));
    spec.manet.placement = args.choice("placement", "uniform", {"grid", "uniform"}) == "grid"
                               ? scenario::ManetPlacement::kGrid
                               : scenario::ManetPlacement::kUniform;
    const std::string mob =
        args.choice("mobility", "waypoint", {"static", "waypoint", "gauss-markov"});
    spec.manet.mobility = mob == "static"     ? scenario::ManetMobility::kStatic
                          : mob == "waypoint" ? scenario::ManetMobility::kWaypoint
                                              : scenario::ManetMobility::kGaussMarkov;
    spec.manet.field_m = args.num("field", 0.0);
    spec.manet.spacing_m = args.positive_num("spacing", spec.manet.spacing_m);
    spec.manet.flows = static_cast<std::size_t>(args.integer("flows", 0));
    spec.manet.flow_kbps = args.positive_num("flow-kbps", spec.manet.flow_kbps);
    const auto r = experiments::manet_run(spec, cfg, seed, &observer);
    std::cout << "manet seed " << seed << ": " << spec.manet.stations << " stations, "
              << r.goodput_kbps << " kbps goodput, delivery "
              << stats::Table::fmt(r.delivery_ratio) << ", delay "
              << stats::Table::fmt(r.mean_delay_ms) << " ms, " << r.events << " events\n"
              << "medium: " << r.deliveries_scheduled << " deliveries scheduled, "
              << r.deliveries_culled << " culled ("
              << stats::Table::fmt(100.0 * r.culled_fraction(), 1) << "% of fan-out), cutoff "
              << stats::Table::fmt(r.cs_cutoff_m, 1) << " m\n";
  } else {  // choice() above guarantees a four-station figure scenario
    experiments::FourStationSpec spec;
    if (scen == "fig7") spec = experiments::fig7_spec(rts, transport);
    if (scen == "fig9") spec = experiments::fig9_spec(rts, transport);
    if (scen == "fig11") spec = experiments::fig11_spec(rts, transport);
    if (scen == "fig12") spec = experiments::fig12_spec(rts, transport);
    const auto r = experiments::four_station_run(spec, cfg, seed, &observer);
    std::cout << scen << " seed " << seed << ": s1 " << r.session1_kbps << " kbps, s2 "
              << r.session2_kbps << " kbps, " << r.events << " events\n";
  }

  if (!trace_json.empty()) {
    observer.write_trace_json(trace_json);
    std::cout << "trace   : " << trace_json << " (" << observer.trace_sink()->size()
              << " events, " << observer.trace_sink()->dropped() << " dropped)\n";
  }
  if (!trace_csv.empty()) {
    observer.write_trace_csv(trace_csv);
    std::cout << "traceCSV: " << trace_csv << '\n';
  }
  if (!metrics.empty()) {
    observer.write_metrics_json(metrics);
    std::cout << "metrics : " << metrics << " (" << observer.registry()->component_count()
              << " components)\n";
  }
  if (const obs::JourneyRecorder* journeys = observer.journeys(); journeys != nullptr) {
    const obs::JourneyLedger& ledger = journeys->ledger();
    std::cout << "journeys: " << ledger.minted << " minted, " << ledger.delivered
              << " delivered, "
              << (ledger.dropped_retry_limit + ledger.dropped_buffer + ledger.dropped_radio_off +
                  ledger.dropped_blackout)
              << " dropped, " << ledger.in_flight << " in flight ("
              << (ledger.balanced() ? "ledger balanced" : "LEDGER IMBALANCE") << ")\n";
    if (!journeys_csv.empty()) {
      observer.write_journeys_csv(journeys_csv);
      std::cout << "journeyCSV: " << journeys_csv << " (" << journeys->retained()
                << " records, " << journeys->dropped() << " dropped)\n";
    }
  }
  return 0;
}

/// Load the perf sidecar that belongs to a fidelity file: the trailing
/// ".json" becomes ".perf.json". Sidecars are optional (machine-bound),
/// so an absent file yields a null document and perf checking is
/// silently skipped for that side.
report::JsonValue load_perf_sidecar(const std::string& fidelity_path) {
  std::string path = fidelity_path;
  const std::string suffix = ".json";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.replace(path.size() - suffix.size(), suffix.size(), ".perf.json");
  } else {
    path += ".perf.json";
  }
  if (!std::ifstream{path}) return {};
  return report::parse_json_file(path);
}

/// `adhocsim scorecard --baseline A.json --current B.json`: diff two
/// scorecards and their perf sidecars. Exit contract: 0 clean, 1 drift,
/// 2 usage / I-O error.
int cmd_scorecard(const tools::CliArgs& args) {
  const std::string baseline = args.str("baseline", "");
  const std::string current = args.str("current", "");
  if (baseline.empty() || current.empty()) {
    std::cerr << "adhocsim scorecard: --baseline FILE and --current FILE are required\n";
    return 2;
  }
  report::CompareOptions opt;
  opt.fidelity_rel_tol = args.positive_num("fidelity-tol", opt.fidelity_rel_tol);
  opt.dev_worsen_tol = args.positive_num("dev-tol", opt.dev_worsen_tol);
  opt.perf_drop_frac = args.positive_num("perf-tol", opt.perf_drop_frac);
  opt.check_perf = !args.has("no-perf");
  const bool perf_waived = args.has("perf-waived");

  report::CompareReport rep;
  try {
    const auto base_doc = report::parse_json_file(baseline);
    const auto cur_doc = report::parse_json_file(current);
    rep = report::compare_scorecards(base_doc, cur_doc, opt);
    if (opt.check_perf) {
      report::compare_perf(load_perf_sidecar(baseline), load_perf_sidecar(current), opt, rep);
    }
  } catch (const std::exception& e) {
    std::cerr << "adhocsim scorecard: " << e.what() << '\n';
    return 2;
  }

  const std::string table = rep.table();
  if (!table.empty()) std::cout << table;
  std::cout << "scorecard '" << rep.bench << "': " << rep.cells_compared
            << " cells compared, fidelity " << (rep.fidelity_ok ? "ok" : "DRIFT") << ", perf "
            << (!opt.check_perf ? "skipped"
                                : rep.perf_ok ? "ok"
                                              : perf_waived ? "DRIFT (waived)" : "DRIFT")
            << '\n';
  return rep.ok(perf_waived) ? 0 : 1;
}

int cmd_campaign(const tools::CliArgs& args) {
  const std::string grid = args.str("grid", "fig2");
  const auto level = obs_level_flag(args, "off");
  if (!level) return 1;
  auto cfg = config_flag(args);
  cfg.obs_level = *level;
  // The shared grid registry (experiments::campaign_by_name) is the
  // same resolution path the serve daemon uses; unknown names throw,
  // listing the valid grids, and main() prints that to stderr.
  const auto def = experiments::campaign_by_name(
      grid, cfg, static_cast<std::uint32_t>(args.positive_integer("probes", 300)));

  // Fail fast on unwritable output sinks before any run is spent.
  // "-" (stdout telemetry) needs no probe; the scorecard probe targets
  // the exact artifact path the writer will use.
  const std::string telemetry = args.str("telemetry", "");
  const std::string scorecard_dir = args.str("scorecard", "");
  if (!tools::require_writable("--telemetry", telemetry)) return 1;
  if (!scorecard_dir.empty() &&
      !tools::require_writable(
          "--scorecard", scorecard_dir + "/" + report::Scorecard::file_name("campaign_" + grid))) {
    return 1;
  }

  campaign::EngineConfig ec;
  ec.jobs = args.has("jobs") ? static_cast<unsigned>(args.positive_integer("jobs", 1)) : 0;
  ec.max_attempts = 1 + static_cast<unsigned>(args.integer("retries", 2));
  std::unique_ptr<campaign::JsonlSink> sink;
  if (telemetry == "-") {
    sink = std::make_unique<campaign::JsonlSink>(std::cout);
  } else if (!telemetry.empty()) {
    sink = std::make_unique<campaign::JsonlSink>(telemetry);
  }
  ec.telemetry = sink.get();

  // Startup log carries the build id (the same stamp cache keys use);
  // keep it off stdout when stdout is the JSONL telemetry stream.
  (telemetry == "-" ? std::cerr : std::cout)
      << "adhocsim " << cache::code_version() << " campaign --grid " << grid << '\n';
  const campaign::CampaignEngine engine{ec};
  const auto n_shards = static_cast<std::size_t>(args.positive_integer("shards", 1));
  const auto shard_idx = static_cast<std::size_t>(args.integer("shard", 0));
  const auto result =
      n_shards > 1 ? engine.run_shard(def.plan, shard_idx, n_shards, def.run)
                   : engine.run(def.plan, def.run);

  // Aggregated table: one row per grid point, mean +- 95% CI per metric.
  const auto points = campaign::aggregate_by_point(result);
  std::vector<std::string> header;
  for (std::size_t a = 0; a < def.plan.grid.axes(); ++a) {
    header.push_back(def.plan.grid.axis(a).name);
  }
  std::vector<std::string> metric_names;
  if (!points.empty()) {
    for (const auto& [name, summary] : points.front().metrics) metric_names.push_back(name);
  }
  for (const auto& m : metric_names) header.push_back(m + " (mean +- ci95)");
  header.push_back("runs");
  stats::Table table{header};
  for (const auto& p : points) {
    std::vector<std::string> row;
    for (const auto& [name, value] : p.params) row.push_back(stats::Table::fmt(value, 1));
    for (const auto& m : metric_names) {
      const auto it = p.metrics.find(m);
      row.push_back(it == p.metrics.end()
                        ? "-"
                        : stats::Table::fmt(it->second.mean()) + " +- " +
                              stats::Table::fmt(it->second.ci95_halfwidth()));
    }
    row.push_back(std::to_string(p.ok_runs) +
                  (p.failed_runs > 0 ? " (+" + std::to_string(p.failed_runs) + " failed)" : ""));
    table.add_row(std::move(row));
  }
  std::cout << "=== campaign '" << result.name << "': " << result.runs.size() << " runs on "
            << result.jobs << " worker(s) ===\n\n"
            << table.to_string();

  std::uint64_t events = 0;
  for (const auto& r : result.runs) {
    if (r.ok) events += r.metrics.events;
  }
  std::cout << '\n'
            << result.ok_count() << " ok, " << result.error_count() << " failed, "
            << stats::Table::fmt(result.wall_seconds, 2) << " s wall, " << events << " events ("
            << stats::Table::fmt(result.wall_seconds > 0
                                     ? static_cast<double>(events) / result.wall_seconds / 1e6
                                     : 0.0,
                                 2)
            << " M events/s)\n";
  for (const auto& r : result.runs) {
    if (!r.ok) {
      std::cout << "  run " << r.spec.run_index << " (point " << r.spec.point_index << ", seed "
                << r.spec.seed << ") failed after " << r.attempts
                << " attempt(s): " << r.error.message << '\n';
    }
  }

  if (!scorecard_dir.empty()) {
    // "campaign_<grid>" keeps CLI artifacts from colliding with the
    // bench_* binaries' BENCH_<grid>.json files in a shared output dir.
    report::Scorecard card{"campaign_" + grid};
    card.set_seeds(cfg.seeds);
    card.add_points(points);
    card.add_campaign(result);
    card.write(scorecard_dir);
    std::cout << "scorecard: " << scorecard_dir << '/'
              << report::Scorecard::file_name("campaign_" + grid) << '\n';
  }
  return result.error_count() == 0 ? 0 : 1;
}

/// SIGTERM/SIGINT target for cmd_serve. A handler may only touch
/// async-signal-safe state; Server::stop() qualifies (one write() on a
/// pre-opened pipe), so graceful shutdown — drain, flight dump, cache
/// summary — runs on the normal path after run() returns.
serve::Server* g_serve_server = nullptr;

/// `adhocsim serve`: bring up the campaign daemon on an AF_UNIX socket
/// with an on-disk content-addressed result cache. Runs until a client
/// sends {"type":"shutdown"} or the process receives SIGTERM/SIGINT;
/// either way the flight recorder is dumped to --flight-dump on exit.
int cmd_serve(const tools::CliArgs& args) {
  const std::string socket_path = args.str("socket", "");
  if (socket_path.empty()) {
    std::cerr << "adhocsim serve: --socket PATH is required\n";
    return 2;
  }
  std::unique_ptr<cache::ResultCache> result_cache;
  const std::string cache_dir = args.str("cache", "");
  if (!cache_dir.empty()) {
    cache::CacheConfig cc;
    cc.root = cache_dir;
    cc.max_entries = static_cast<std::size_t>(args.integer("cache-entries", 0));
    cc.max_bytes = static_cast<std::uint64_t>(args.integer("cache-mb", 0)) * 1024 * 1024;
    result_cache = std::make_unique<cache::ResultCache>(cc);
  }

  obs::svc::TelemetryConfig tc;
  tc.flight_requests = static_cast<std::size_t>(args.positive_integer("flight-requests", 256));
  tc.flight_errors = static_cast<std::size_t>(args.positive_integer("flight-errors", 64));
  obs::svc::ServiceTelemetry telemetry{tc};
  if (result_cache != nullptr) {
    telemetry.metrics.attach(
        [&](obs::MetricsRegistry& reg) { result_cache->attach_metrics(reg); });
  }
  const auto log_format =
      obs::svc::parse_log_format(args.choice("log-format", "text", {"text", "json"}));
  obs::svc::Logger logger{args.has("quiet") ? nullptr : &std::cout, log_format};

  serve::ServerConfig sc;
  sc.socket_path = socket_path;
  sc.service.jobs = args.has("jobs") ? static_cast<unsigned>(args.positive_integer("jobs", 1)) : 0;
  sc.service.retries = static_cast<unsigned>(args.integer("retries", 2));
  sc.service.cache = result_cache.get();
  sc.service.metrics = &telemetry.metrics;
  sc.log = &logger;
  sc.telemetry = &telemetry;
  sc.shutdown_grace_ms = static_cast<unsigned>(args.positive_integer("shutdown-grace-ms", 5000));

  std::cout << "adhocsim " << cache::code_version() << " serve --socket " << socket_path << '\n';
  if (result_cache != nullptr) {
    const auto s = result_cache->stats();
    std::cout << "cache: " << result_cache->root() << " (version " << result_cache->version()
              << ", " << s.entries << " entries, " << s.bytes << " bytes, " << s.invalidated
              << " invalidated)\n";
  } else {
    std::cout << "cache: disabled (no --cache DIR; every submit runs cold)\n";
  }
  std::cout.flush();

  serve::Server server{sc};
  server.start();
  g_serve_server = &server;
  std::signal(SIGTERM, [](int) {
    if (g_serve_server != nullptr) g_serve_server->stop();
  });
  std::signal(SIGINT, [](int) {
    if (g_serve_server != nullptr) g_serve_server->stop();
  });
  server.run();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_server = nullptr;

  const std::string flight_path = args.str("flight-dump", socket_path + ".flight.jsonl");
  {
    std::ofstream flight_out{flight_path, std::ios::binary | std::ios::trunc};
    if (flight_out) {
      telemetry.recorder.dump(flight_out, obs::svc::unix_ms());
      std::cout << "flight: " << flight_path << " (" << telemetry.recorder.recorded()
                << " requests recorded, " << telemetry.recorder.dropped() << " dropped)\n";
    } else {
      std::cerr << "adhocsim serve: cannot write flight dump to " << flight_path << '\n';
    }
  }
  if (result_cache != nullptr) {
    const auto s = result_cache->stats();
    std::cout << "cache: " << s.hits << " hits, " << s.misses << " misses, " << s.stores
              << " stores, " << s.evictions << " evictions\n";
  }
  return 0;
}

/// `adhocsim submit`: one request against a running daemon. Streams the
/// response lines to stdout (--quiet keeps only the summary), writes
/// the scorecard artifact when --scorecard DIR is given.
int cmd_submit(const tools::CliArgs& args) {
  const std::string socket_path = args.str("socket", "");
  if (socket_path.empty()) {
    std::cerr << "adhocsim submit: --socket PATH is required\n";
    return 2;
  }
  serve::Client client{socket_path};
  const bool quiet = args.has("quiet");

  // Control requests: terminal line only, no campaign involved.
  if (args.has("stats") || args.has("ping") || args.has("shutdown") || args.has("metrics") ||
      args.has("debug")) {
    std::string request_line;
    if (args.has("metrics")) {
      const std::string fmt = args.choice("format", "json", {"json", "prometheus"});
      request_line = R"({"format":")" + fmt + R"(","type":"metrics"})";
    } else if (args.has("debug")) {
      request_line = R"({"type":"debug"})";
    } else {
      const std::string type =
          args.has("stats") ? "stats" : args.has("ping") ? "ping" : "shutdown";
      request_line = R"({"type":")" + type + R"("})";
    }
    const std::string reply = client.request(request_line);
    // Prometheus expositions and flight dumps embed multi-line text;
    // unescape so the output is directly scrapeable / greppable.
    bool printed_raw = false;
    if (reply.find(R"("type":"error")") == std::string::npos) {
      const auto doc = report::JsonValue::parse(reply);
      const auto* text = doc.find("text");
      const auto* flight = doc.find("flight");
      if (text != nullptr && text->is_string()) {
        std::cout << text->str();
        printed_raw = true;
      } else if (flight != nullptr && flight->is_string()) {
        std::cout << flight->str();
        printed_raw = true;
      }
    }
    if (!printed_raw) std::cout << reply << '\n';
    return reply.find(R"("type":"error")") == std::string::npos ? 0 : 1;
  }

  serve::SubmitRequest req;
  req.grid = args.str("grid", "fig2");
  req.seeds.clear();
  const auto n_seeds = args.positive_integer("seeds", 3);
  for (std::int64_t s = 1; s <= n_seeds; ++s) req.seeds.push_back(static_cast<std::uint64_t>(s));
  req.seconds = args.positive_num("seconds", 8.0);
  req.warmup_s = args.positive_num("warmup", 0.5);
  req.obs_level = args.str("obs-level", "off");
  req.fault_plan = args.str("fault-plan", "");
  req.probes = static_cast<std::uint32_t>(args.positive_integer("probes", 300));

  const std::string scorecard_dir = args.str("scorecard", "");
  std::string scorecard_error;
  const std::string terminal =
      client.request(req.to_json(), [&](const std::string& line) {
        if (!quiet) std::cout << line << '\n';
        if (scorecard_dir.empty() || line.find(R"("type":"scorecard")") == std::string::npos) {
          return;
        }
        try {
          // Unescaping the "scorecard" member yields the exact
          // byte-stable fidelity document the daemon built.
          const auto doc = report::JsonValue::parse(line);
          const auto* body = doc.find("scorecard");
          const auto* bench = doc.find("bench");
          if (body == nullptr || bench == nullptr) throw std::runtime_error("malformed scorecard line");
          const std::string path =
              scorecard_dir + "/" + report::Scorecard::file_name(bench->str());
          std::ofstream out{path, std::ios::binary | std::ios::trunc};
          if (!out) throw std::runtime_error("cannot write " + path);
          out << body->str();
          if (!quiet) std::cout << "scorecard: " << path << '\n';
        } catch (const std::exception& e) {
          scorecard_error = e.what();
        }
      });
  if (quiet) std::cout << terminal << '\n';
  if (!scorecard_error.empty()) {
    std::cerr << "adhocsim submit: scorecard: " << scorecard_error << '\n';
    return 1;
  }
  if (terminal.find(R"("type":"error")") != std::string::npos) return 1;
  // submit_end carries the error count; non-zero means failed runs.
  const auto doc = report::JsonValue::parse(terminal);
  return doc.number_or("errors", 0.0) == 0.0 ? 0 : 1;  // NOLINT-ADHOC(fp-compare)
}

int cmd_version() {
  std::cout << "adhocsim " << cache::code_version() << '\n';
  return 0;
}

void usage() {
  std::cout <<
      "adhocsim <command> [flags]\n"
      "  table2                            analytical max throughput table\n"
      "  two-node [--rate R] [--rts] [--tcp] [--distance D] [--payload B]\n"
      "  four-station [--rate R] [--d23 D] [--rts] [--tcp] [--reversed]\n"
      "  range [--rate R]                  estimate TX range\n"
      "  saturation [--stations N] [--rts] simulated vs Bianchi\n"
      "  delay [--rate R] [--distance D] [--load-mbps L]\n"
      "  run --scenario two-node|fig7|fig9|fig11|fig12|manet [--seed N] [--rts] [--tcp]\n"
      "      [--obs-level off|metrics|trace|full|journeys] [--trace-json PATH]\n"
      "      [--trace-csv PATH] [--metrics PATH]  one observed replication\n"
      "      [--journeys PATH] [--journey-sample N]  packet-journey CSV + ledger\n"
      "      manet extras: [--stations N] [--placement grid|uniform]\n"
      "      [--mobility static|waypoint|gauss-markov] [--field M] [--spacing M]\n"
      "      [--flows N] [--flow-kbps K]\n"
      "  campaign --grid fig2|rates|fig3|fig7|fig9|fig11|fig12|saturation|faults\n"
      "           |manet_sweep\n"
      "           [--jobs N] [--telemetry PATH|-] [--retries R] [--obs-level L]\n"
      "           [--shard I --shards N] [--scorecard DIR]\n"
      "                                    parallel sweep + JSONL telemetry\n"
      "  scorecard --baseline FILE --current FILE [--fidelity-tol F] [--dev-tol F]\n"
      "            [--perf-tol F] [--no-perf] [--perf-waived]\n"
      "                                    diff BENCH_*.json against a baseline\n"
      "                                    (exit 0 clean, 1 drift, 2 usage/IO)\n"
      "  serve --socket PATH [--cache DIR] [--cache-entries N] [--cache-mb M]\n"
      "        [--jobs N] [--retries R] [--quiet] [--log-format text|json]\n"
      "        [--shutdown-grace-ms MS] [--flight-requests N] [--flight-errors K]\n"
      "        [--flight-dump PATH]\n"
      "                                    campaign daemon + result cache;\n"
      "                                    dumps the flight recorder on exit\n"
      "  submit --socket PATH [--grid G] [--seeds N] [--seconds S] [--warmup W]\n"
      "         [--obs-level L] [--fault-plan P] [--probes N] [--scorecard DIR]\n"
      "         [--quiet] | --stats | --ping | --shutdown\n"
      "         | --metrics [--format json|prometheus] | --debug\n"
      "                                    send one request to a serve daemon\n"
      "  version                           build id (also --version)\n"
      "common flags: --seeds N --seconds S --fault-plan NAME|FILE|SPEC\n"
      "  (fault-plan builtins: none|midrun-jam|crash|fig4-burst; see EXPERIMENTS.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const tools::CliArgs args{argc, argv};
    const std::string& cmd = args.command();
    if (cmd == "table2") return cmd_table2();
    if (cmd == "two-node") return cmd_two_node(args);
    if (cmd == "four-station") return cmd_four_station(args);
    if (cmd == "range") return cmd_range(args);
    if (cmd == "saturation") return cmd_saturation(args);
    if (cmd == "delay") return cmd_delay(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "scorecard") return cmd_scorecard(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "version" || (cmd.empty() && args.has("version"))) return cmd_version();
    usage();
    return cmd.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "adhocsim: " << e.what() << '\n';
    return 1;
  }
}
