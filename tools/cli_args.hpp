#pragma once
// Minimal command-line flag parser for the adhocsim tool.
//
// Supports `--key value` options and bare `--switch` booleans; anything
// before the first `--` token is treated as the subcommand.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace adhoc::tools {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    int i = 1;
    if (i < argc && argv[i][0] != '-') command_ = argv[i++];
    while (i < argc) {
      std::string token = argv[i++];
      if (token.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument: " + token);
      }
      token.erase(0, 2);
      if (i < argc && argv[i][0] != '-') {
        values_[token] = argv[i++];
      } else {
        switches_.insert(token);
      }
    }
  }

  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] bool has(const std::string& name) const {
    return switches_.contains(name) || values_.contains(name);
  }

  [[nodiscard]] std::string str(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] double num(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] std::int64_t integer(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

 private:
  std::string command_;
  std::unordered_map<std::string, std::string> values_;
  std::unordered_set<std::string> switches_;
};

}  // namespace adhoc::tools
