#pragma once
// Minimal command-line flag parser for the adhocsim tool.
//
// Supports `--key value` options and bare `--switch` booleans; anything
// before the first `--` token is treated as the subcommand.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace adhoc::tools {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    int i = 1;
    if (i < argc && argv[i][0] != '-') command_ = argv[i++];
    while (i < argc) {
      std::string token = argv[i++];
      if (token.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument: " + token);
      }
      token.erase(0, 2);
      // A lone "-" is a conventional value (stdin/stdout), not a flag.
      if (i < argc && (argv[i][0] != '-' || argv[i][1] == '\0')) {
        values_[token] = argv[i++];
      } else {
        switches_.insert(token);
      }
    }
  }

  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] bool has(const std::string& name) const {
    return switches_.contains(name) || values_.contains(name);
  }

  [[nodiscard]] std::string str(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] double num(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::size_t consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(it->second, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != it->second.size()) {
      throw std::invalid_argument("--" + name + " expects a number, got '" + it->second + "'");
    }
    return v;
  }

  [[nodiscard]] std::int64_t integer(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::size_t consumed = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(it->second, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != it->second.size()) {
      throw std::invalid_argument("--" + name + " expects an integer, got '" + it->second + "'");
    }
    return v;
  }

  /// Numeric flag that must be strictly positive (e.g. --seconds).
  [[nodiscard]] double positive_num(const std::string& name, double fallback) const {
    const double v = num(name, fallback);
    if (!(v > 0.0)) {
      throw std::invalid_argument("--" + name + " must be positive, got " +
                                  str(name, std::to_string(v)));
    }
    return v;
  }

  /// String flag constrained to a closed set (e.g. --scenario, --grid).
  /// Unknown values throw with the full list of accepted names, so the
  /// caller's error message doubles as documentation.
  [[nodiscard]] std::string choice(const std::string& name, const std::string& fallback,
                                   std::initializer_list<const char*> allowed) const {
    const std::string v = str(name, fallback);
    std::string list;
    for (const char* a : allowed) {
      if (v == a) return v;
      if (!list.empty()) list += '|';
      list += a;
    }
    throw std::invalid_argument("--" + name + " must be one of " + list + ", got '" + v + "'");
  }

  /// Integer flag that must be strictly positive (e.g. --seeds, --jobs).
  [[nodiscard]] std::int64_t positive_integer(const std::string& name,
                                              std::int64_t fallback) const {
    const std::int64_t v = integer(name, fallback);
    if (v <= 0) {
      throw std::invalid_argument("--" + name + " must be a positive integer, got " +
                                  str(name, std::to_string(v)));
    }
    return v;
  }

 private:
  std::string command_;
  // Lookup-only storage: these are never iterated (the determinism
  // linter's unordered-iter rule would flag emission loops over them),
  // so unordered containers are safe here.
  std::unordered_map<std::string, std::string> values_;
  std::unordered_set<std::string> switches_;
};

}  // namespace adhoc::tools
