#!/usr/bin/env python3
"""Determinism lint for the adhoc80211b repository.

The simulator's headline contract -- bit-identical results at jobs=1 vs
jobs=N for the same master seed -- is enforced at runtime by the
campaign determinism tests.  This linter enforces it at analysis time by
banning the constructs that historically break that contract silently:

  wall-clock      OS time / entropy in simulation code (time(), rand(),
                  std::random_device, system_clock, steady_clock, ...).
                  Wall-clock profiling is legitimate in a few sanctioned
                  spots; those carry NOLINT-ADHOC(wall-clock).
  rng-stream      <random> engines / distributions instead of the repo's
                  seeded sim::Simulator::rng_stream(name) substreams.
  unordered-iter  range-for over a std::unordered_* container feeding a
                  trace / telemetry / metrics / JSON emission path, whose
                  iteration order varies across libstdc++ versions.
  fp-compare      ==/!= against floating-point literals; exact equality
                  on doubles is either a bug or an invariant worth a
                  written justification (NOLINT-ADHOC(fp-compare)).
  header-guard    .hpp without #pragma once (or a classic include guard)
                  as its first non-comment line.
  self-include    a header that #includes itself.
  raw-sync        std sync primitives (std::mutex, std::lock_guard,
                  std::unique_lock, std::condition_variable, ...)
                  anywhere outside src/concurrency/ — concurrency goes
                  through the annotated conc:: wrappers so Clang's
                  -Wthread-safety analysis (and the debug lock-rank
                  check) see every lock.
  guarded-member  a class in a concurrent subsystem declares a
                  conc::Mutex member but annotates nothing GUARDED_BY /
                  PT_GUARDED_BY it: the mutex is decoration the
                  thread-safety analysis cannot check.

Python files get one rule of their own:

  py-json-sort-keys  json.dump()/json.dumps() without sort_keys=True.
                     Dict insertion order leaks run-to-run noise into
                     artifacts the scorecard pipeline diffs byte-wise;
                     every tool that writes JSON must sort its keys.

Suppression contract (every suppression must name its rule):

  code();  // NOLINT-ADHOC(rule-id)            same-line
  // NOLINT-ADHOC-NEXTLINE(rule-id)            next-line
  // NOLINT-ADHOC(rule-a,rule-b)               several rules at once

A NOLINT-ADHOC without a parenthesised rule list is itself a finding
(bare-suppression), as is a suppression naming an unknown rule
(unknown-rule).  Findings print as `path:line: [rule-id] message` and a
non-empty finding set exits 1.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "wall-clock": "OS wall-clock/entropy source in simulation code; use sim::Time "
    "or suppress sanctioned profiling with NOLINT-ADHOC(wall-clock)",
    "rng-stream": "std <random> engine/distribution; draw from "
    "sim::Simulator::rng_stream(name) / Rng::substream instead",
    "unordered-iter": "iteration over std::unordered_* feeds an emission path; "
    "iteration order is unspecified -- use std::map or sort first",
    "fp-compare": "==/!= on floating point; compare against a tolerance or "
    "restructure the predicate",
    "header-guard": "header missing '#pragma once' (or classic guard) as its "
    "first non-comment line",
    "self-include": "header includes itself",
    "py-json-sort-keys": "json.dump()/json.dumps() without sort_keys=True; "
    "unsorted keys make JSON artifacts byte-unstable",
    "raw-sync": "raw std sync primitive outside src/concurrency/; lock through "
    "conc::Mutex / conc::MutexLock / conc::CondVar so the thread-safety "
    "analysis and lock-rank check see it",
    "guarded-member": "conc::Mutex member guards nothing; annotate at least one "
    "member GUARDED_BY (or PT_GUARDED_BY) this mutex",
    "bare-suppression": "NOLINT-ADHOC without a rule list; write "
    "NOLINT-ADHOC(rule-id)",
    "unknown-rule": "NOLINT-ADHOC names a rule this linter does not define",
}

# The subsystems where threads actually meet: a conc::Mutex member here
# must guard something (guarded-member). src/concurrency itself is the
# one place allowed to touch the raw std primitives (raw-sync).
CONCURRENT_DIRS = (
    "src/campaign",
    "src/cache",
    "src/serve",
    "src/obs",
    "src/sim",
)

# Rules that only apply under certain path fragments (POSIX-style).
# fp-compare is deliberately unscoped: the issue floor was src/stats/ +
# src/analysis/, but exact floating-point compares are just as hazardous
# in grid parameters and bench predicates, so it runs everywhere.
RULE_PATH_SCOPE: dict[str, tuple[str, ...]] = {
    "guarded-member": CONCURRENT_DIRS,
}

# Rules suspended under certain path fragments: the sync-layer wrappers
# are implemented in terms of the std primitives they ban elsewhere.
RULE_PATH_EXCLUDE: dict[str, tuple[str, ...]] = {
    "raw-sync": ("src/concurrency",),
}

# Directories whose unordered-container iterations are flagged even
# without an emission marker nearby: these layers exist to serialize.
# src/report is here because its scorecards are diffed byte-for-byte
# against checked-in baselines — any order leak breaks the gate.
# src/cache and src/serve serialize cache keys and run-record payloads
# whose bytes ARE the contract (content addressing, warm==cold).
ALWAYS_ORDERED_DIRS = (
    "src/obs",
    "src/obs/svc",  # covered by src/obs; listed so the service-telemetry
    # layer (metrics exposition, flight recorder) stays pinned even if
    # the parent entry is ever narrowed
    "src/obs/journey",  # likewise: journey CSV + ledger exports are
    # diffed byte-for-byte across reruns and worker counts
    "src/campaign",
    "src/report",
    "src/cache",
    "src/serve",
    # src/spatial's neighbor queries feed the medium's event-scheduling
    # order; an unordered iteration there breaks bit-identical replay.
    "src/spatial",
    # The sync layer underpins every serialization path above; any
    # future iteration here (e.g. a held-locks dump) must be ordered.
    "src/concurrency",
)

# Tokens that mark an emission context for unordered-iter outside the
# always-ordered dirs (JSON building, telemetry records, trace export).
EMISSION_MARKER = re.compile(
    r"json|emit|snapshot|telemetry|\bcsv\b|\.write|tracer|trace_|record", re.IGNORECASE
)
EMISSION_WINDOW = 15  # lines of loop body scanned for a marker

WALL_CLOCK = re.compile(
    r"\b(?:std::)?(?:random_device|system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bsrand\s*\(|\brand\s*\(|\btime\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\("
)
RNG_ENGINE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux\w+|knuth_b"
    r"|mersenne_twister_engine|linear_congruential_engine|subtract_with_carry_engine"
    r"|uniform_(?:int|real)_distribution|normal_distribution|bernoulli_distribution"
    r"|exponential_distribution|poisson_distribution|discrete_distribution"
    r"|shuffle_order_engine|random_shuffle)\b"
)
RNG_INCLUDE = re.compile(r"#\s*include\s*<random>")
# Raw-literal-seeded Rng bypasses the named-substream derivation tree
# (sim::Simulator::rng_stream / Rng::substream), so adding one perturbs
# nothing but is also independent of the master seed.
RNG_RAW_SEED = re.compile(r"\bRng\s*[({]\s*\d")
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fFlL]?"
FP_COMPARE = re.compile(
    r"[=!]=\s*[-+]?" + FLOAT_LIT + r"|" + FLOAT_LIT + r"\s*[=!]="
)
UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b[^;{]*?>\s*(\w+)\s*[;={]")
# Captures the range expression of a range-for; the trailing identifier
# (metrics_, obj.metrics_, ...) is compared against unordered decls.
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*([^;)]+?)\s*\)")
TRAILING_IDENT = re.compile(r"(\w+)$")
RAW_SYNC = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable(?:_any)?|call_once|once_flag)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
# A conc::Mutex data member / variable declaration. The `[;{=]` tail and
# required whitespace exclude reference returns (`conc::Mutex& f()`) and
# parameters (`conc::Mutex& m`), which guard nothing by themselves.
CONC_MUTEX_MEMBER = re.compile(r"\bconc::Mutex\s+(\w+)\s*[;{=]")
INCLUDE_QUOTED = re.compile(r'#\s*include\s*"([^"]+)"')
PRAGMA_ONCE = re.compile(r"#\s*pragma\s+once\b")
IFNDEF_GUARD = re.compile(r"#\s*ifndef\s+\w+")

NOLINT = re.compile(r"NOLINT-ADHOC(-NEXTLINE)?(?:\(([^)]*)\))?")

PY_JSON_DUMP = re.compile(r"\bjson\.dumps?\s*\(")
PY_DUMP_WINDOW = 10  # lines scanned for sort_keys= after the call opens

CXX_EXTENSIONS = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}
PY_EXTENSIONS = {".py"}
SKIP_DIR_PREFIXES = ("build", "cmake-build")
SKIP_DIR_NAMES = {".git", "CMakeFiles", "__pycache__"}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving
    line structure, so rule regexes never match inside prose or data.
    Handles raw string literals (R"delim( ... )delim")."""
    out = []
    i, n = 0, len(text)
    CODE, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = CODE
    raw_terminator = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string?  R"delim( ... )delim" -- the R may carry an
                # encoding prefix (u8R, LR, ...); checking for a trailing
                # R is sufficient here.
                if out and text[i - 1] == "R":
                    close = text.find("(", i + 1)
                    delim = text[i + 1 : close] if close != -1 else ""
                    raw_terminator = ")" + delim + '"'
                    state = STRING
                    out.append('"')
                    i = close + 1 if close != -1 else i + 1
                else:
                    raw_terminator = None
                    state = STRING
                    out.append('"')
                    i += 1
            elif c == "'":
                state = CHAR
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = CODE
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = CODE
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if raw_terminator is not None:
                if text.startswith(raw_terminator, i):
                    state = CODE
                    out.append(" " * (len(raw_terminator) - 1) + '"')
                    i += len(raw_terminator)
                else:
                    out.append(c if c == "\n" else " ")
                    i += 1
            elif c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = CODE
                out.append('"')
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = CODE
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def parse_suppressions(raw_lines: list[str]):
    """Returns ({line -> set(rules)} same-line, {line -> set(rules)}
    next-line targets, [malformed Finding-tuples])."""
    same, nextline, malformed = {}, {}, []
    for lineno, line in enumerate(raw_lines, start=1):
        for m in NOLINT.finditer(line):
            is_next = m.group(1) is not None
            rules_blob = m.group(2)
            if rules_blob is None or not rules_blob.strip():
                malformed.append((lineno, "bare-suppression", RULES["bare-suppression"]))
                continue
            rules = {r.strip() for r in rules_blob.split(",") if r.strip()}
            unknown = sorted(r for r in rules if r not in RULES)
            for r in unknown:
                malformed.append((lineno, "unknown-rule", f"unknown rule '{r}' in suppression"))
            rules &= set(RULES)
            if not rules:
                continue
            if is_next:
                nextline.setdefault(lineno + 1, set()).update(rules)
            else:
                same.setdefault(lineno, set()).update(rules)
    return same, nextline, malformed


def rule_applies(rule: str, posix_path: str) -> bool:
    exclude = RULE_PATH_EXCLUDE.get(rule)
    if exclude is not None and any(fragment in posix_path for fragment in exclude):
        return False
    scope = RULE_PATH_SCOPE.get(rule)
    if scope is None:
        return True
    return any(fragment in posix_path for fragment in scope)


def lint_python_file(path: Path) -> list[Finding]:
    """Python half of the linter: every json.dump / json.dumps call
    must pass sort_keys=True (scan the call's argument window — calls
    routinely span lines). Shares the same suppression syntax, behind
    a '#' comment."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(path, 0, "py-json-sort-keys", f"unreadable file: {e}")]
    raw_lines = text.splitlines()
    # Only the '#'-comment tail of each line can carry suppressions:
    # Python sources (this linter included) legitimately mention the
    # suppression token inside strings and docstrings.
    comment_tails = [line[line.find("#"):] if "#" in line else "" for line in raw_lines]
    same, nextline, malformed = parse_suppressions(comment_tails)
    findings = [Finding(path, ln, rule, msg) for ln, rule, msg in malformed]
    for lineno, line in enumerate(raw_lines, start=1):
        stripped = line.lstrip()
        if stripped.startswith("#"):
            continue
        m = PY_JSON_DUMP.search(line)
        if not m:
            continue
        # The call's argument list may span lines: accumulate from the
        # opening paren until it balances (capped, for unclosed code).
        call = line[m.start():]
        depth = call.count("(") - call.count(")")
        for extra in raw_lines[lineno : lineno - 1 + PY_DUMP_WINDOW]:
            if depth <= 0:
                break
            call += "\n" + extra
            depth += extra.count("(") - extra.count(")")
        if "sort_keys" in call:
            continue
        if "py-json-sort-keys" in same.get(lineno, ()) or \
           "py-json-sort-keys" in nextline.get(lineno, ()):
            continue
        findings.append(Finding(path, lineno, "py-json-sort-keys",
                                f"'{m.group(0).strip()}': {RULES['py-json-sort-keys']}"))
    return findings


def lint_file(path: Path, repo_root: Path) -> list[Finding]:
    if path.suffix in PY_EXTENSIONS:
        return lint_python_file(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(path, 0, "header-guard", f"unreadable file: {e}")]
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    posix = path.resolve().as_posix()
    try:
        rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        rel = posix

    same, nextline, malformed = parse_suppressions(raw_lines)
    findings = [Finding(path, ln, rule, msg) for ln, rule, msg in malformed]

    def suppressed(lineno: int, rule: str) -> bool:
        return rule in same.get(lineno, ()) or rule in nextline.get(lineno, ())

    def emit(lineno: int, rule: str, message: str) -> None:
        if not rule_applies(rule, posix):
            return
        if suppressed(lineno, rule):
            return
        findings.append(Finding(path, lineno, rule, message))

    # --- wall-clock / rng-stream / fp-compare: plain line scans -------
    for lineno, line in enumerate(code_lines, start=1):
        m = WALL_CLOCK.search(line)
        if m:
            emit(lineno, "wall-clock", f"'{m.group(0).strip()}': {RULES['wall-clock']}")
        m = RNG_ENGINE.search(line) or RNG_INCLUDE.search(line) or RNG_RAW_SEED.search(line)
        if m:
            emit(lineno, "rng-stream", f"'{m.group(0).strip()}': {RULES['rng-stream']}")
        m = FP_COMPARE.search(line)
        if m:
            emit(lineno, "fp-compare", f"'{m.group(0).strip()}': {RULES['fp-compare']}")
        m = RAW_SYNC.search(line)
        if m:
            emit(lineno, "raw-sync", f"'{m.group(0).strip()}': {RULES['raw-sync']}")

    # --- guarded-member ----------------------------------------------
    # File granularity: a conc::Mutex declaration must be matched by a
    # GUARDED_BY / PT_GUARDED_BY naming it somewhere in the same file.
    # (Members and their annotations live together in the class body, so
    # same-file is the right resolution for a line-based linter.)
    for lineno, line in enumerate(code_lines, start=1):
        for m in CONC_MUTEX_MEMBER.finditer(line):
            name = m.group(1)
            guard_ref = re.compile(r"\b(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)")
            if any(guard_ref.search(other) for other in code_lines):
                continue
            emit(
                lineno,
                "guarded-member",
                f"conc::Mutex '{name}': {RULES['guarded-member']}",
            )

    # --- unordered-iter ----------------------------------------------
    unordered_names = set()
    for line in code_lines:
        for m in UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))
    if unordered_names:
        always = any(d in posix for d in ALWAYS_ORDERED_DIRS)
        for lineno, line in enumerate(code_lines, start=1):
            for m in RANGE_FOR.finditer(line):
                ident = TRAILING_IDENT.search(m.group(1))
                name = ident.group(1) if ident else ""
                if name not in unordered_names:
                    continue
                body = "\n".join(code_lines[lineno - 1 : lineno - 1 + EMISSION_WINDOW])
                if always or EMISSION_MARKER.search(body):
                    emit(
                        lineno,
                        "unordered-iter",
                        f"range-for over unordered container '{name}': "
                        f"{RULES['unordered-iter']}",
                    )

    # --- header hygiene ----------------------------------------------
    if path.suffix in {".hpp", ".h", ".hh"}:
        guarded = False
        for line in code_lines:
            stripped = line.strip()
            if not stripped:
                continue
            guarded = bool(PRAGMA_ONCE.match(stripped) or IFNDEF_GUARD.match(stripped))
            break
        if not guarded:
            emit(1, "header-guard", RULES["header-guard"])
        # Raw lines here: the comment/string stripper blanks quoted
        # include paths, which is exactly what we need to read.
        for lineno, line in enumerate(raw_lines, start=1):
            m = INCLUDE_QUOTED.search(line)
            if m and (rel.endswith(m.group(1)) or m.group(1) == path.name):
                emit(lineno, "self-include", f"'{m.group(1)}': {RULES['self-include']}")

    return findings


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_file():
            if p.suffix in CXX_EXTENSIONS | PY_EXTENSIONS:
                files.append(p)
            continue
        if not p.is_dir():
            print(f"adhoc_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
        for sub in sorted(p.rglob("*")):
            if sub.is_dir():
                continue
            parts = sub.relative_to(p).parts
            if any(
                part in SKIP_DIR_NAMES or part.startswith(SKIP_DIR_PREFIXES)
                for part in parts[:-1]
            ):
                continue
            if sub.suffix in CXX_EXTENSIONS | PY_EXTENSIONS:
                files.append(sub)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    ap.add_argument("--root", type=Path, default=None,
                    help="repo root for relative self-include matching "
                    "(default: two levels above this script)")
    ap.add_argument("--list-rules", action="store_true", help="print rule table and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule, desc in RULES.items():
            print(f"{rule:<{width}}  {desc}")
        return 0
    if not args.paths:
        ap.error("no paths given (or use --list-rules)")

    repo_root = args.root or Path(__file__).resolve().parents[2]
    findings: list[Finding] = []
    files = collect_files(args.paths)
    for f in files:
        findings.extend(lint_file(f, repo_root))

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for f in findings:
        print(f)
    summary = f"adhoc_lint: {len(findings)} finding(s) in {len(files)} file(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
