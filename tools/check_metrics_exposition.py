#!/usr/bin/env python3
"""Validate Prometheus text exposition produced by the serve daemon.

Usage:
    check_metrics_exposition.py [--require FAMILY]... SCRAPE1 [SCRAPE2]

Checks, per scrape file:
  * every line is either `# TYPE <family> <type>` or `<sample> <value>`
    (the daemon emits no HELP lines or timestamps);
  * metric/family names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
    match [a-zA-Z_][a-zA-Z0-9_]*, label values are well-quoted;
  * each family has exactly one TYPE line, emitted before its samples,
    with a known type (counter|gauge|summary|histogram|untyped);
  * every sample belongs to a declared family (summary samples may add
    the _sum/_count suffixes and a quantile label);
  * sample values parse as floats (NaN/+Inf/-Inf included);
  * within one scrape no sample key (name + label set) repeats.

With two scrapes, additionally checks monotonicity: for every counter
sample key present in both, the second value is >= the first — the
hammer test scrapes twice around a batch of submits to pin this.

Each `--require FAMILY` asserts that a sample of that family (exact
name, or its _sum/_count expansion for summaries) is present in every
scrape — the hook tests use to pin "this counter is actually exposed"
rather than silently absent.

Exit 0 when every check passes, 1 otherwise (violations on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FAMILY_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_LINE = re.compile(r"^# TYPE (\S+) (\S+)$")
# name, optional {labels}, single-space, value (no timestamp support).
SAMPLE_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")
# One label: name="value" with \\, \" and \n escapes inside the value.
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\[\\"n])*)"')
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
SUMMARY_SUFFIXES = ("_sum", "_count")


def parse_value(token: str) -> float | None:
    if token in ("NaN", "+Inf", "-Inf", "Inf"):
        return float(token.replace("Inf", "inf"))
    try:
        return float(token)
    except ValueError:
        return None


def parse_labels(raw: str, where: str, errors: list[str]) -> str | None:
    """Validate `{k="v",...}` and return a canonical key, or None."""
    body = raw[1:-1]
    if not body:
        errors.append(f"{where}: empty label set '{{}}'")
        return None
    pairs = []
    pos = 0
    while pos < len(body):
        m = LABEL_PAIR.match(body, pos)
        if m is None:
            errors.append(f"{where}: malformed label at '{body[pos:]}'")
            return None
        pairs.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"{where}: expected ',' between labels at '{body[pos:]}'")
                return None
            pos += 1
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        errors.append(f"{where}: duplicate label name in {names}")
        return None
    return "{" + ",".join(f'{n}="{v}"' for n, v in sorted(pairs)) + "}"


def family_of(sample_name: str, declared: dict[str, str]) -> str | None:
    """Resolve a sample to its declared family (handling summary suffixes)."""
    if sample_name in declared:
        return sample_name
    for suffix in SUMMARY_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) in ("summary", "histogram"):
                return base
    return None


def check_scrape(path: Path, errors: list[str]) -> dict[str, tuple[str, float]]:
    """Validate one scrape; return sample key -> (family type, value)."""
    declared: dict[str, str] = {}  # family -> type
    samples: dict[str, tuple[str, float]] = {}
    try:
        text = path.read_text()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return samples
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{path}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line")
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if m is None:
                errors.append(f"{where}: comment is not a '# TYPE family type' line: {line!r}")
                continue
            family, ftype = m.group(1), m.group(2)
            if not FAMILY_NAME.match(family):
                errors.append(f"{where}: bad family name {family!r}")
            if ftype not in KNOWN_TYPES:
                errors.append(f"{where}: unknown type {ftype!r} for family {family!r}")
            if family in declared:
                errors.append(f"{where}: duplicate TYPE line for family {family!r}")
            declared[family] = ftype
            continue
        m = SAMPLE_LINE.match(line)
        if m is None:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name, raw_labels, raw_value = m.group(1), m.group(2), m.group(3)
        label_key = ""
        if raw_labels is not None:
            canonical = parse_labels(raw_labels, where, errors)
            if canonical is None:
                continue
            label_key = canonical
        value = parse_value(raw_value)
        if value is None:
            errors.append(f"{where}: value {raw_value!r} is not a float")
            continue
        family = family_of(name, declared)
        if family is None:
            errors.append(f"{where}: sample {name!r} has no preceding TYPE line")
            continue
        key = name + label_key
        if key in samples:
            errors.append(f"{where}: duplicate sample key {key!r}")
            continue
        samples[key] = (declared[family], value)
    return samples


def check_monotonic(
    first: dict[str, tuple[str, float]],
    second: dict[str, tuple[str, float]],
    errors: list[str],
) -> None:
    shared = sorted(set(first) & set(second))
    counters = 0
    for key in shared:
        ftype, before = first[key]
        _, after = second[key]
        if ftype != "counter":
            continue
        counters += 1
        if after < before:
            errors.append(f"counter {key!r} went backwards: {before} -> {after}")
    if counters == 0:
        errors.append("no counter sample keys shared between the two scrapes")


def check_required(
    required: list[str],
    samples: dict[str, tuple[str, float]],
    path: str,
    errors: list[str],
) -> None:
    for family in required:
        prefixes = (family,) + tuple(family + s for s in SUMMARY_SUFFIXES)
        if not any(key == p or key.startswith(p + "{")
                   for key in samples for p in prefixes):
            errors.append(f"{path}: required family {family!r} has no sample")


def main(argv: list[str]) -> int:
    args = argv[1:]
    required: list[str] = []
    while len(args) >= 2 and args[0] == "--require":
        required.append(args[1])
        args = args[2:]
    if len(args) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 1
    argv = [argv[0], *args]
    errors: list[str] = []
    first = check_scrape(Path(argv[1]), errors)
    if not first:
        errors.append(f"{argv[1]}: no samples parsed")
    check_required(required, first, argv[1], errors)
    if len(argv) == 3:
        second = check_scrape(Path(argv[2]), errors)
        if not second:
            errors.append(f"{argv[2]}: no samples parsed")
        check_required(required, second, argv[2], errors)
        check_monotonic(first, second, errors)
    if errors:
        for e in errors:
            print(f"check_metrics_exposition: {e}", file=sys.stderr)
        print(f"check_metrics_exposition: FAILED ({len(errors)} violation(s))",
              file=sys.stderr)
        return 1
    n = len(first)
    print(f"check_metrics_exposition: ok ({n} sample(s) in {argv[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
